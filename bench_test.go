// Benchmarks: one per experiment in DESIGN.md's index (E1–E11, A1–A3).
// Each benchmark times the representative workload of its experiment —
// a full broadcast simulation per iteration — so `go test -bench=. `
// regenerates the cost side of every paper-shaped result. The statistical
// side (success rates, thresholds, fits) is produced by cmd/experiments
// and recorded in EXPERIMENTS.md.
package faultcast_test

import (
	"context"
	"sync/atomic"
	"testing"

	"faultcast"
	"faultcast/internal/adversary"
	"faultcast/internal/exec"
	"faultcast/internal/graph"
	"faultcast/internal/harness"
	"faultcast/internal/kucera"
	"faultcast/internal/lowerbound"
	"faultcast/internal/protocols/decay"
	"faultcast/internal/protocols/flooding"
	"faultcast/internal/protocols/gossip"
	"faultcast/internal/protocols/radiorepeat"
	"faultcast/internal/protocols/simplemalicious"
	"faultcast/internal/protocols/simpleomission"
	"faultcast/internal/radio"
	"faultcast/internal/rng"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
	"faultcast/internal/telemetry"
)

// runCfg executes one simulation per iteration with rotating seeds.
func runCfg(b *testing.B, mk func(seed uint64) *sim.Config) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(mk(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1SimpleOmission times Theorem 2.1's algorithm: one phase per
// node, m steps per phase, on a 64-node tree at p = 0.5 (message passing).
func BenchmarkE1SimpleOmission(b *testing.B) {
	g := graph.KaryTree(63, 2)
	proto := simpleomission.New(g, 0, sim.MessagePassing, 2.5)
	runCfg(b, func(seed uint64) *sim.Config {
		return &sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: sim.Omission, P: 0.5,
			Source: 0, SourceMsg: []byte("1"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: seed,
		}
	})
}

// BenchmarkE1SimpleOmissionRadio is the radio-model side of Theorem 2.1.
func BenchmarkE1SimpleOmissionRadio(b *testing.B) {
	g := graph.KaryTree(63, 2)
	proto := simpleomission.New(g, 0, sim.Radio, 2.5)
	runCfg(b, func(seed uint64) *sim.Config {
		return &sim.Config{
			Graph: g, Model: sim.Radio, Fault: sim.Omission, P: 0.5,
			Source: 0, SourceMsg: []byte("1"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: seed,
		}
	})
}

// BenchmarkE2SimpleMalicious times Theorem 2.2's voting algorithm under a
// worst-case flipping adversary at p = 0.3.
func BenchmarkE2SimpleMalicious(b *testing.B) {
	g := graph.KaryTree(31, 2)
	proto := simplemalicious.New(g, 0, sim.MessagePassing, 12)
	runCfg(b, func(seed uint64) *sim.Config {
		return &sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: sim.Malicious, P: 0.3,
			Source: 0, SourceMsg: []byte("1"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: seed,
			Adversary: adversary.Flip{Wrong: []byte("0")},
		}
	})
}

// BenchmarkE3Equivocator times the Theorem 2.3 impossibility workload: the
// history-free equivocating adversary on K2 at p = 1/2.
func BenchmarkE3Equivocator(b *testing.B) {
	g := graph.TwoNode()
	proto := simplemalicious.New(g, 0, sim.MessagePassing, 32)
	runCfg(b, func(seed uint64) *sim.Config {
		msg := []byte("0")
		if seed&1 == 1 {
			msg = []byte("1")
		}
		return &sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: sim.Malicious, P: 0.5,
			Source: 0, SourceMsg: msg,
			NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: seed,
			Adversary: adversary.Equivocator{M0: []byte("0"), M1: []byte("1"), SourceOnly: true},
		}
	})
}

// BenchmarkE4RadioFeasible times Theorem 2.4's feasible side: radio
// Simple-Malicious below the (1-p)^(Δ+1) threshold on a line.
func BenchmarkE4RadioFeasible(b *testing.B) {
	g := graph.Line(16)
	p := faultcast.RadioThreshold(g.MaxDegree()) * 0.5
	proto := simplemalicious.New(g, 0, sim.Radio, 10)
	runCfg(b, func(seed uint64) *sim.Config {
		return &sim.Config{
			Graph: g, Model: sim.Radio, Fault: sim.Malicious, P: p,
			Source: 0, SourceMsg: []byte("1"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: seed,
			Adversary: adversary.Flip{Wrong: []byte("0")},
		}
	})
}

// BenchmarkE5RadioImpossible times the Theorem 2.4 star adversary at the
// threshold fixed point.
func BenchmarkE5RadioImpossible(b *testing.B) {
	g := graph.Star(6)
	p := faultcast.RadioThreshold(g.MaxDegree())
	proto := simplemalicious.New(g, 1, sim.Radio, 8)
	runCfg(b, func(seed uint64) *sim.Config {
		return &sim.Config{
			Graph: g, Model: sim.Radio, Fault: sim.Malicious, P: p,
			Source: 1, SourceMsg: []byte("1"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: seed,
			Adversary: adversary.Star{M0: []byte("0"), M1: []byte("1")},
		}
	})
}

// BenchmarkE6HelloProtocol times the two-node timing protocol at p = 0.7.
func BenchmarkE6HelloProtocol(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := faultcast.Run(faultcast.Config{
			Graph: faultcast.TwoNode(), Source: 0, Message: []byte("0"),
			Model: faultcast.MessagePassing, Fault: faultcast.LimitedMalicious,
			P: 0.7, Algorithm: faultcast.TimingBit, Adversary: faultcast.CrashAdv,
			WindowC: 64, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7FloodTime times the Θ(D + log n) flood of Theorem 3.1 on a
// 256-node line at p = 0.5 with completion tracking (the timing
// experiment's exact workload).
func BenchmarkE7FloodTime(b *testing.B) {
	g := graph.Line(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := faultcast.Run(faultcast.Config{
			Graph: g, Source: 0, Message: []byte("1"),
			Model: faultcast.MessagePassing, Fault: faultcast.Omission,
			P: 0.5, Algorithm: faultcast.Flooding, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkE8Kucera times the composed CO1/CO2 algorithm (Theorem 3.2) on
// a 33-node line at p = 0.2, including plan compilation amortized out.
func BenchmarkE8Kucera(b *testing.B) {
	g := graph.Line(33)
	plan, err := kucera.BuildPlan(32, 0.2, kucera.Options{})
	if err != nil {
		b.Fatal(err)
	}
	proto, err := kucera.New(g, 0, plan)
	if err != nil {
		b.Fatal(err)
	}
	runCfg(b, func(seed uint64) *sim.Config {
		return &sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: sim.LimitedMalicious, P: 0.2,
			Source: 0, SourceMsg: []byte("1"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: seed,
			Adversary: adversary.Flip{Wrong: []byte("0")},
		}
	})
}

// BenchmarkE8PlanCompile times plan construction + compilation alone.
func BenchmarkE8PlanCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plan, err := kucera.BuildPlan(64, 0.2, kucera.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := kucera.Compile(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9LayeredOpt times the Lemma 3.3 exhaustive optimum search on
// G_3 (n = 11; the largest exhaustively tractable instance).
func BenchmarkE9LayeredOpt(b *testing.B) {
	g := graph.Layered(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt, err := radio.OptimalLength(g, 0)
		if err != nil || opt != 4 {
			b.Fatalf("opt=%d err=%v", opt, err)
		}
	}
}

// BenchmarkE10LowerBound times the Lemma 3.4 hit-count audit: covering
// G_10's 1023 labels with the geometric sweep family.
func BenchmarkE10LowerBound(b *testing.B) {
	const m = 10
	need, _ := lowerbound.RequiredLength(m, 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		steps := lowerbound.StepsToCover(need, 1<<18, func(k int) *lowerbound.Schedule {
			return lowerbound.GeometricSweep(m, k, rng.New(uint64(i)))
		})
		if steps <= m+1 {
			b.Fatal("implausible coverage")
		}
	}
}

// BenchmarkE11RadioRepeat times Theorem 3.4's Malicious-Radio on the
// layered graph (schedule length opt = m+1, each step repeated m times).
func BenchmarkE11RadioRepeat(b *testing.B) {
	g := graph.Layered(4)
	sched := radio.LayeredSchedule(4)
	p := faultcast.RadioThreshold(g.MaxDegree()) * 0.5
	proto, err := radiorepeat.New(g, 0, sched, radiorepeat.MaliciousVariant, 8)
	if err != nil {
		b.Fatal(err)
	}
	runCfg(b, func(seed uint64) *sim.Config {
		return &sim.Config{
			Graph: g, Model: sim.Radio, Fault: sim.Malicious, P: p,
			Source: 0, SourceMsg: []byte("1"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: seed,
			Adversary: adversary.Flip{Wrong: []byte("0")},
		}
	})
}

// BenchmarkA1WindowSweep times the ablation's unit of work: one
// Simple-Omission run per window constant.
func BenchmarkA1WindowSweep(b *testing.B) {
	g := graph.Line(32)
	cs := []float64{0.5, 2, 8}
	protos := make([]*simpleomission.Proto, len(cs))
	for i, c := range cs {
		protos[i] = simpleomission.New(g, 0, sim.MessagePassing, c)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		proto := protos[i%len(protos)]
		cfg := &sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: sim.Omission, P: 0.5,
			Source: 0, SourceMsg: []byte("1"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: uint64(i),
		}
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA2AdversaryStrength times one run against each adversary kind.
func BenchmarkA2AdversaryStrength(b *testing.B) {
	g := graph.TwoNode()
	proto := simplemalicious.New(g, 0, sim.MessagePassing, 16)
	advs := []sim.Adversary{
		adversary.Crash{},
		adversary.RandomNoise{},
		adversary.Flip{Wrong: []byte("0")},
		adversary.Equivocator{M0: []byte("0"), M1: []byte("1"), SourceOnly: true},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := &sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: sim.Malicious, P: 0.5,
			Source: 0, SourceMsg: []byte("1"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: uint64(i),
			Adversary: advs[i%len(advs)],
		}
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA3SequentialEngine and BenchmarkA3ConcurrentEngine compare the
// two engines on the identical workload (grid flood, omission, p = 0.4).
func BenchmarkA3SequentialEngine(b *testing.B) {
	g := graph.Grid(8, 8)
	proto := simpleomission.New(g, 0, sim.MessagePassing, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := &sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: sim.Omission, P: 0.4,
			Source: 0, SourceMsg: []byte("1"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: uint64(i),
		}
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA3ConcurrentEngine(b *testing.B) {
	g := graph.Grid(8, 8)
	proto := simpleomission.New(g, 0, sim.MessagePassing, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := &sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: sim.Omission, P: 0.4,
			Source: 0, SourceMsg: []byte("1"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: uint64(i),
		}
		if _, err := sim.RunConcurrent(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkB1Decay times the randomized Decay baseline on a 25-node grid
// at p = 0.5 (the B1 comparison workload).
func BenchmarkB1Decay(b *testing.B) {
	g := graph.Grid(5, 5)
	proto := decay.New(g)
	runCfg(b, func(seed uint64) *sim.Config {
		return &sim.Config{
			Graph: g, Model: sim.Radio, Fault: sim.Omission, P: 0.5,
			Source: 0, SourceMsg: []byte("1"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(100), Seed: seed,
		}
	})
}

// BenchmarkF1InformingCurve times one completion-tracked flooding run on
// line(128) (the F1 figure workload: per-node informing rounds recorded).
func BenchmarkF1InformingCurve(b *testing.B) {
	g := graph.Line(128)
	proto := flooding.New(g, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := &sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: sim.Omission, P: 0.5,
			Source: 0, SourceMsg: []byte("1"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(8), Seed: uint64(i),
			TrackCompletion: true,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.InformedRound) != g.N() {
			b.Fatal("informing rounds missing")
		}
	}
}

// BenchmarkG1Gossip times the gossiping extension on grid(6x6) at p=0.5.
func BenchmarkG1Gossip(b *testing.B) {
	g := graph.Grid(6, 6)
	proto := gossip.New(g, 0)
	full := gossip.FullDigest(g.N())
	runCfg(b, func(seed uint64) *sim.Config {
		return &sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: sim.Omission, P: 0.5,
			Source: 0, SourceMsg: full,
			NewNode: proto.NewNode, Rounds: proto.Rounds(6), Seed: seed,
		}
	})
}

// BenchmarkHarnessQuick times a full quick-mode harness pass of the
// feasibility experiments (the CI smoke workload).
func BenchmarkHarnessQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := harness.Options{Quick: true, Trials: 20, Seed: uint64(i + 1)}
		harness.RunE1(o)
	}
}

// --- compile-once plans vs the per-trial seed path -----------------------
//
// The pairs below measure the tentpole: BenchmarkEstimateSeed* rebuilds
// the scenario for every trial (the pre-Plan EstimateSuccess behaviour:
// Kučera plan / greedy radio schedule / BFS tree / protocol state per
// trial), while BenchmarkEstimatePlan* compiles once and streams trials
// through per-worker reusable engine states. One iteration = one
// estimateTrials-trial estimate of the same scenario.

const estimateTrials = 64

func composedCfg() faultcast.Config {
	return faultcast.Config{
		Graph: faultcast.Line(33), Source: 0, Message: []byte("1"),
		Model: faultcast.MessagePassing, Fault: faultcast.LimitedMalicious,
		P: 0.2, Algorithm: faultcast.Composed, Adversary: faultcast.FlipAdv,
	}
}

func radioRepeatCfg() faultcast.Config {
	return faultcast.Config{
		Graph: faultcast.Layered(4), Source: 0, Message: []byte("1"),
		Model: faultcast.Radio, Fault: faultcast.Omission,
		P: 0.4, Algorithm: faultcast.RadioRepeat,
	}
}

// benchEstimateSeedPath reproduces the seed repository's estimator: every
// trial re-runs the full Config lowering (faultcast.Run compiles a fresh
// plan per call).
func benchEstimateSeedPath(b *testing.B, cfg faultcast.Config) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prop := stat.Estimate(estimateTrials, uint64(i), func(seed uint64) bool {
			c := cfg
			c.Seed = seed
			res, err := faultcast.Run(c)
			if err != nil {
				panic(err)
			}
			return res.Success
		})
		if prop.Trials != estimateTrials {
			b.Fatal("short estimate")
		}
	}
}

func benchEstimatePlan(b *testing.B, cfg faultcast.Config) {
	plan, err := faultcast.Compile(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := plan.Estimate(estimateTrials, faultcast.WithBaseSeed(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if est.Trials != estimateTrials {
			b.Fatal("short estimate")
		}
	}
}

func BenchmarkEstimateSeedComposed(b *testing.B) { benchEstimateSeedPath(b, composedCfg()) }
func BenchmarkEstimatePlanComposed(b *testing.B) { benchEstimatePlan(b, composedCfg()) }

func BenchmarkEstimateSeedRadioRepeat(b *testing.B) { benchEstimateSeedPath(b, radioRepeatCfg()) }
func BenchmarkEstimatePlanRadioRepeat(b *testing.B) { benchEstimatePlan(b, radioRepeatCfg()) }

// --- word-parallel bitset core vs the scalar reference core --------------
//
// The *ScalarCore twins run the identical workload on the engine's
// retained scalar round core (per-node Bernoulli fault draws, callback
// delivery, per-round corruption bookkeeping), so the bitset tentpole's
// win is measurable inside one binary: the headline numbers land in
// BENCH_engine.json via cmd/benchjson. The larger Engine* pairs isolate
// the round core itself (one full simulation per iteration, no estimator
// around it) on workloads big enough for the word-parallel delivery rules
// to dominate.

func scalarCore(cfg faultcast.Config) faultcast.Config {
	cfg.ScalarCore = true
	return cfg
}

func BenchmarkEstimatePlanComposedScalarCore(b *testing.B) {
	benchEstimatePlan(b, scalarCore(composedCfg()))
}

func BenchmarkEstimatePlanRadioRepeatScalarCore(b *testing.B) {
	benchEstimatePlan(b, scalarCore(radioRepeatCfg()))
}

// --- lane-transposed trial-parallel core vs the bitset round core --------
//
// The *Lanes/*BitsetCore pairs pin the trial-parallel tentpole: the same
// Estimate workload with the core forced either to the lane engine (64
// trials per machine word) or to the word-parallel-per-round bitset
// engine it supersedes on this path. CoreAuto already selects lanes for
// these scenarios, so the unsuffixed EstimatePlan benchmarks above track
// the default-path number; the explicit pair keeps the speedup measurable
// even as defaults move.

func laneCore(cfg faultcast.Config) faultcast.Config {
	cfg.Core = faultcast.CoreLanes
	return cfg
}

func bitsetCore(cfg faultcast.Config) faultcast.Config {
	cfg.Core = faultcast.CoreBitset
	return cfg
}

func BenchmarkEstimatePlanComposedLanes(b *testing.B) {
	benchEstimatePlan(b, laneCore(composedCfg()))
}

// BenchmarkEstimatePlanComposedLanesTraced is the telemetry-overhead
// twin of BenchmarkEstimatePlanComposedLanes: the identical workload
// with a live span and batch probe attached, the way the service runs it
// when tracing is on. The gap between the pair is the full observation
// cost (two clock reads per engine call plus the probe fold) and is
// budgeted at under 2% — spans are per-batch, not per-trial, so the cost
// amortizes over the whole batch of simulations.
func BenchmarkEstimatePlanComposedLanesTraced(b *testing.B) {
	cfg := laneCore(composedCfg())
	plan, err := faultcast.Compile(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tel := telemetry.NewCollector(16, 4)
	var batches atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := tel.StartTrace("estimate")
		sp := tr.StartSpan("execute")
		est, err := plan.Estimate(estimateTrials, faultcast.WithBaseSeed(uint64(i)),
			faultcast.WithSpan(sp),
			faultcast.WithBatchProbe(func(bs exec.BatchStat) { batches.Add(1) }))
		if err != nil {
			b.Fatal(err)
		}
		if est.Trials != estimateTrials {
			b.Fatal("short estimate")
		}
		sp.End()
		tr.Finish()
	}
	if batches.Load() == 0 {
		b.Fatal("probe never fired")
	}
}

func BenchmarkEstimatePlanComposedBitsetCore(b *testing.B) {
	benchEstimatePlan(b, bitsetCore(composedCfg()))
}

func BenchmarkEstimatePlanRadioRepeatLanes(b *testing.B) {
	benchEstimatePlan(b, laneCore(radioRepeatCfg()))
}

func BenchmarkEstimatePlanRadioRepeatBitsetCore(b *testing.B) {
	benchEstimatePlan(b, bitsetCore(radioRepeatCfg()))
}

// --- k-bit lane lowerings: noise, equivocator, and timing scenarios ------
//
// The pairs below pin the k-bit generalization: the same Estimate workload
// on the scenarios the two-symbol lane core used to gate — the noise
// adversary (three payload symbols, per-transmission alphabet draws), the
// source-only equivocator on a bit message, and the content-free timing
// protocol — forced to the lane core and to the bitset round core it
// replaces on the default path.

func noiseEstimateCfg() faultcast.Config {
	return faultcast.Config{
		Graph: faultcast.KaryTree(63, 2), Source: 0, Message: []byte("diff"),
		Model: faultcast.MessagePassing, Fault: faultcast.Malicious,
		P: 0.3, WindowC: 2, Algorithm: faultcast.SimpleMalicious,
		Adversary: faultcast.NoiseAdv,
	}
}

func equivocatorEstimateCfg() faultcast.Config {
	return faultcast.Config{
		Graph: faultcast.KaryTree(63, 2), Source: 0, Message: []byte("1"),
		Model: faultcast.MessagePassing, Fault: faultcast.Malicious,
		P: 0.35, WindowC: 2, Algorithm: faultcast.SimpleMalicious,
		Adversary: faultcast.WorstCase,
	}
}

func timingEstimateCfg() faultcast.Config {
	return faultcast.Config{
		Graph: faultcast.TwoNode(), Source: 0, Message: []byte("1"),
		Model: faultcast.MessagePassing, Fault: faultcast.LimitedMalicious,
		P: 0.4, WindowC: 64, Algorithm: faultcast.TimingBit,
		Adversary: faultcast.CrashAdv,
	}
}

func BenchmarkEstimateLanesNoise(b *testing.B) {
	benchEstimatePlan(b, laneCore(noiseEstimateCfg()))
}

func BenchmarkEstimateLanesNoiseBitsetCore(b *testing.B) {
	benchEstimatePlan(b, bitsetCore(noiseEstimateCfg()))
}

func BenchmarkEstimateLanesEquivocator(b *testing.B) {
	benchEstimatePlan(b, laneCore(equivocatorEstimateCfg()))
}

func BenchmarkEstimateLanesEquivocatorBitsetCore(b *testing.B) {
	benchEstimatePlan(b, bitsetCore(equivocatorEstimateCfg()))
}

func BenchmarkEstimateLanesTiming(b *testing.B) {
	benchEstimatePlan(b, laneCore(timingEstimateCfg()))
}

func BenchmarkEstimateLanesTimingBitsetCore(b *testing.B) {
	benchEstimatePlan(b, bitsetCore(timingEstimateCfg()))
}

func benchEngineRun(b *testing.B, cfg faultcast.Config) {
	plan, err := faultcast.Compile(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Run(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func engineMPCfg() faultcast.Config {
	return faultcast.Config{
		Graph: faultcast.Grid(16, 16), Source: 0, Message: []byte("1"),
		Model: faultcast.MessagePassing, Fault: faultcast.Omission,
		P: 0.4, Algorithm: faultcast.Flooding,
	}
}

func engineRadioCfg() faultcast.Config {
	return faultcast.Config{
		Graph: faultcast.Layered(6), Source: 0, Message: []byte("1"),
		Model: faultcast.Radio, Fault: faultcast.Omission,
		P: 0.4, Algorithm: faultcast.RadioRepeat,
	}
}

// --- sweep scheduler: shared worker pool vs the per-cell loop -----------
//
// The pair below measures the sweep tentpole on a feasibility grid
// (2 graphs × 4 failure probabilities, almost-safe early stopping — the
// harness's E1 shape), end to end. PerCell reproduces the pre-sweep
// workflow verbatim: compile each cell, then estimate it on its own
// worker pool, cells strictly sequential — every early-stopped cell's
// batch tails and wind-down leave the pool idle while later cells wait.
// Shared compiles the grid once and schedules every cell's batches on
// one pool, so an early-stopped cell's workers immediately flow to
// undecided cells. Both paths execute bit-identical trials (the
// equivalence tests pin that), so the delta is scheduling plus
// compile sharing; it scales with core count — on a single-vCPU
// machine both serialize to the same trial stream and the pair ties,
// so read BENCH_sweep.json next to its recorded GOMAXPROCS.
// cmd/benchjson records the pair in BENCH_sweep.json.

func sweepGridSpec() faultcast.SweepSpec {
	return faultcast.SweepSpec{
		Graphs: []faultcast.SweepGraph{
			{Graph: faultcast.Line(32)},
			{Graph: faultcast.Grid(6, 6)},
		},
		Models:     []faultcast.Model{faultcast.MessagePassing},
		Faults:     []faultcast.Fault{faultcast.Omission},
		Algorithms: []faultcast.Algorithm{faultcast.SimpleOmission},
		Ps:         []float64{0.2, 0.4, 0.6, 0.8},
		Seed:       0x5eed,
		Budget:     faultcast.CellBudget{Trials: 600, AlmostSafe: true},
	}
}

func BenchmarkSweepFeasibilityGridPerCell(b *testing.B) {
	// Expand the grid once (untimed) so the old loop below sees the same
	// cell list; compilation itself is timed per cell, as the old
	// harness loops paid it.
	ref, err := faultcast.CompileSweep(sweepGridSpec())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ref.Cells() {
			c := &ref.Cells()[j]
			plan, err := faultcast.Compile(c.Config)
			if err != nil {
				b.Fatal(err)
			}
			est, err := plan.Estimate(600, faultcast.WithAlmostSafeTarget())
			if err != nil {
				b.Fatal(err)
			}
			if est.Trials == 0 {
				b.Fatal("empty estimate")
			}
		}
	}
}

func BenchmarkSweepFeasibilityGridShared(b *testing.B) {
	spec := sweepGridSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, err := faultcast.CompileSweep(spec)
		if err != nil {
			b.Fatal(err)
		}
		cells := 0
		err = sp.Run(context.Background(), func(r faultcast.CellResult) {
			if r.Estimate.Trials == 0 {
				b.Error("empty estimate")
			}
			cells++
		})
		if err != nil {
			b.Fatal(err)
		}
		if cells != len(sp.Cells()) {
			b.Fatalf("only %d cells finished", cells)
		}
	}
}

func BenchmarkEngineMPFlood(b *testing.B)           { benchEngineRun(b, engineMPCfg()) }
func BenchmarkEngineMPFloodScalarCore(b *testing.B) { benchEngineRun(b, scalarCore(engineMPCfg())) }

func BenchmarkEngineRadioRepeat(b *testing.B) { benchEngineRun(b, engineRadioCfg()) }
func BenchmarkEngineRadioRepeatScalarCore(b *testing.B) {
	benchEngineRun(b, scalarCore(engineRadioCfg()))
}

package faultcast

import (
	"math"
	"strings"
	"testing"
)

func TestThresholds(t *testing.T) {
	if got := Threshold(MessagePassing, Omission, 5); got != 1 {
		t.Fatalf("omission MP threshold %v, want 1", got)
	}
	if got := Threshold(Radio, Omission, 5); got != 1 {
		t.Fatalf("omission radio threshold %v, want 1", got)
	}
	if got := Threshold(MessagePassing, Malicious, 5); got != 0.5 {
		t.Fatalf("malicious MP threshold %v, want 0.5", got)
	}
	pStar := Threshold(Radio, Malicious, 3)
	if math.Abs(pStar-math.Pow(1-pStar, 4)) > 1e-9 {
		t.Fatalf("radio threshold %v does not solve p=(1-p)^4", pStar)
	}
	if got := Threshold(MessagePassing, LimitedMalicious, 0); got != 1 {
		t.Fatalf("limited malicious MP threshold %v, want 1", got)
	}
}

func TestFeasible(t *testing.T) {
	cases := []struct {
		model Model
		fault Fault
		p     float64
		delta int
		want  bool
	}{
		{MessagePassing, Omission, 0.99, 4, true},
		{MessagePassing, Omission, 1.0, 4, false},
		{MessagePassing, Malicious, 0.49, 4, true},
		{MessagePassing, Malicious, 0.5, 4, false},
		{Radio, Malicious, 0.05, 4, true},
		{Radio, Malicious, 0.4, 4, false},
		{MessagePassing, Malicious, -0.1, 4, false},
	}
	for _, tc := range cases {
		if got := Feasible(tc.model, tc.fault, tc.p, tc.delta); got != tc.want {
			t.Errorf("Feasible(%v,%v,%v,Δ=%d) = %v, want %v",
				tc.model, tc.fault, tc.p, tc.delta, got, tc.want)
		}
	}
}

func TestRadioThresholdMatchesEquation(t *testing.T) {
	for delta := 1; delta <= 16; delta *= 2 {
		p := RadioThreshold(delta)
		if math.Abs(p-math.Pow(1-p, float64(delta+1))) > 1e-9 {
			t.Fatalf("Δ=%d: %v", delta, p)
		}
	}
}

func TestGraphConstructorsExported(t *testing.T) {
	if g := Line(5); g.N() != 5 {
		t.Fatal("Line")
	}
	if g := Star(5); g.MaxDegree() != 4 {
		t.Fatal("Star")
	}
	if g := Layered(3); g.N() != 11 {
		t.Fatal("Layered")
	}
	if g := GNP(20, 0.1, 7); !g.Connected() {
		t.Fatal("GNP disconnected")
	}
	if g := RandomTree(20, 7); g.M() != 19 {
		t.Fatal("RandomTree")
	}
	if tr := BFSTree(Line(5), 0); tr.Height() != 4 {
		t.Fatal("BFSTree")
	}
}

func TestRunValidation(t *testing.T) {
	base := Config{
		Graph: Line(4), Source: 0, Message: []byte("m"),
		Model: MessagePassing, Fault: Omission, P: 0.2, Seed: 1,
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil graph", func(c *Config) { c.Graph = nil }},
		{"empty message", func(c *Config) { c.Message = nil }},
		{"bad source", func(c *Config) { c.Source = 17 }},
		{"bad p", func(c *Config) { c.P = 1 }},
		{"flooding on radio", func(c *Config) { c.Model = Radio; c.Algorithm = Flooding }},
		{"radio-repeat on mp", func(c *Config) { c.Algorithm = RadioRepeat }},
		{"timing on big graph", func(c *Config) { c.Algorithm = TimingBit }},
		{"composed on radio", func(c *Config) { c.Model = Radio; c.Algorithm = Composed }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestRunAutoOmissionMP(t *testing.T) {
	res, err := Run(Config{
		Graph: Grid(4, 4), Source: 0, Message: []byte("hello"),
		Model: MessagePassing, Fault: Omission, P: 0.3, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("auto omission run failed: %+v", res)
	}
	if res.Faults == 0 {
		t.Fatal("no faults sampled at p=0.3")
	}
}

func TestRunAutoRadio(t *testing.T) {
	res, err := Run(Config{
		Graph: Line(10), Source: 0, Message: []byte("m"),
		Model: Radio, Fault: Omission, P: 0.4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("auto radio omission failed: %+v", res)
	}
}

func TestRunMaliciousRadioBelowThreshold(t *testing.T) {
	g := Line(8)
	p := RadioThreshold(g.MaxDegree()) * 0.4
	est, err := EstimateSuccess(Config{
		Graph: g, Source: 0, Message: []byte("1"),
		Model: Radio, Fault: Malicious, P: p, Adversary: FlipAdv, Seed: 5,
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !est.AlmostSafe(g.N()) {
		t.Fatalf("below-threshold malicious radio: %v", est)
	}
}

func TestRunComposedAuto(t *testing.T) {
	est, err := EstimateSuccess(Config{
		Graph: Line(9), Source: 0, Message: []byte("1"),
		Model: MessagePassing, Fault: LimitedMalicious, P: 0.2,
		Adversary: FlipAdv, Seed: 11,
	}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if est.Rate < 0.85 {
		t.Fatalf("composed algorithm: %v", est)
	}
}

func TestRunTimingBitAuto(t *testing.T) {
	// K2 + bit message + limited malicious -> Auto picks TimingBit.
	for _, bit := range []string{"0", "1"} {
		est, err := EstimateSuccess(Config{
			Graph: TwoNode(), Source: 0, Message: []byte(bit),
			Model: MessagePassing, Fault: LimitedMalicious, P: 0.7,
			Adversary: CrashAdv, Seed: 13,
		}, 100)
		if err != nil {
			t.Fatal(err)
		}
		if est.Rate < 0.9 {
			t.Fatalf("bit %s at p=0.7: %v", bit, est)
		}
	}
}

func TestWorstCaseAdversaryPinsK2(t *testing.T) {
	// Explicit SimpleMalicious at p=0.5 with the WorstCase (equivocator)
	// adversary: success should hover near 1/2... but note the source
	// message is fixed per config here, so the adversary's swap target is
	// deterministic; we check it is far from almost-safe.
	est, err := EstimateSuccess(Config{
		Graph: TwoNode(), Source: 0, Message: []byte("1"),
		Model: MessagePassing, Fault: Malicious, P: 0.5,
		Algorithm: SimpleMalicious, Adversary: WorstCase, Seed: 17,
	}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if est.Rate > 0.75 {
		t.Fatalf("equivocator at p=0.5 should block almost-safety: %v", est)
	}
}

func TestEstimateRate(t *testing.T) {
	est := Estimate{Rate: 0.97, Low: 0.94, Hi: 0.99, Trials: 100, Succeeds: 97}
	if !est.AlmostSafe(50) { // 1-1/50 = 0.98 <= hi
		t.Fatal("AlmostSafe(50) should hold")
	}
	if est.AlmostSafe(1000) { // 0.999 > hi
		t.Fatal("AlmostSafe(1000) should fail")
	}
	if est.String() == "" {
		t.Fatal("empty string")
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := Config{
		Graph: Grid(4, 4), Source: 0, Message: []byte("m"),
		Model: MessagePassing, Fault: Omission, P: 0.4, Seed: 99,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same config diverged: %+v vs %+v", a, b)
	}
}

func TestRoundsOverride(t *testing.T) {
	res, err := Run(Config{
		Graph: Line(10), Source: 0, Message: []byte("m"),
		Model: MessagePassing, Fault: Omission, P: 0, Seed: 1,
		Algorithm: Flooding, Rounds: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
	if res.Success {
		t.Fatal("3 rounds cannot flood line(10)")
	}
}

func TestRunExplicitSimpleOmissionRadio(t *testing.T) {
	res, err := Run(Config{
		Graph: Star(6), Source: 0, Message: []byte("m"),
		Model: Radio, Fault: Omission, P: 0.3,
		Algorithm: SimpleOmission, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("explicit simple-omission radio failed: %+v", res)
	}
	if res.Collisions != 0 {
		t.Fatalf("simple-omission produced %d collisions", res.Collisions)
	}
}

func TestRunNoiseAdversary(t *testing.T) {
	est, err := EstimateSuccess(Config{
		Graph: KaryTree(7, 2), Source: 0, Message: []byte("1"),
		Model: MessagePassing, Fault: Malicious, P: 0.2,
		Algorithm: SimpleMalicious, Adversary: NoiseAdv, Seed: 21,
	}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if est.Rate < 0.9 {
		t.Fatalf("noise adversary at p=0.2: %v", est)
	}
}

func TestRunWorstCaseRadioStar(t *testing.T) {
	// Bit message + radio + WorstCase -> the Theorem 2.4 star adversary.
	g := Star(4)
	pStar := RadioThreshold(g.MaxDegree())
	est, err := EstimateSuccess(Config{
		Graph: g, Source: 1, Message: []byte("1"),
		Model: Radio, Fault: Malicious, P: pStar,
		Algorithm: SimpleMalicious, Adversary: WorstCase,
		WindowC: 8, Seed: 23,
	}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if est.Rate > 0.85 {
		t.Fatalf("star adversary at p* should break almost-safety: %v", est)
	}
}

func TestRunWorstCaseNonBitFallsBackToFlip(t *testing.T) {
	// Non-bit messages can't be equivocated pairwise; WorstCase falls
	// back to flipping, which below threshold must lose.
	est, err := EstimateSuccess(Config{
		Graph: Line(6), Source: 0, Message: []byte("payload"),
		Model: MessagePassing, Fault: Malicious, P: 0.25,
		Algorithm: SimpleMalicious, Adversary: WorstCase, Seed: 29,
	}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if est.Rate < 0.9 {
		t.Fatalf("flip fallback below threshold: %v", est)
	}
}

func TestRunCrashAdvLimited(t *testing.T) {
	res, err := Run(Config{
		Graph: Line(5), Source: 0, Message: []byte("1"),
		Model: MessagePassing, Fault: LimitedMalicious, P: 0.1,
		Algorithm: Composed, Adversary: CrashAdv, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("composed + crash at p=0.1 failed: %+v", res)
	}
}

func TestThresholdLimitedMaliciousRadio(t *testing.T) {
	got := Threshold(Radio, LimitedMalicious, 3)
	if got != RadioThreshold(3) {
		t.Fatalf("limited radio threshold %v, want %v", got, RadioThreshold(3))
	}
}

func TestFlipOf(t *testing.T) {
	if string(flipOf([]byte("0"))) != "1" || string(flipOf([]byte("1"))) != "0" {
		t.Fatal("bit flip broken")
	}
	if string(flipOf([]byte("xyz"))) != "0" {
		t.Fatal("non-bit flip should be 0")
	}
}

func TestRunTraceAndConcurrent(t *testing.T) {
	var sb strings.Builder
	cfg := Config{
		Graph: Line(4), Source: 0, Message: []byte("m"),
		Model: MessagePassing, Fault: Omission, P: 0.2, Seed: 3,
		Trace: &sb,
	}
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "round    0:") {
		t.Fatalf("trace output missing:\n%s", sb.String())
	}
	cfg.Trace = nil
	cfg.Concurrent = true
	conc, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq != conc {
		t.Fatalf("engines disagree through the public API: %+v vs %+v", seq, conc)
	}
}

func TestModelFaultAlgoStrings(t *testing.T) {
	if MessagePassing.String() == "" || Radio.String() == "" ||
		Omission.String() == "" || Malicious.String() == "" ||
		LimitedMalicious.String() == "" || Auto.String() == "" ||
		Composed.String() == "" {
		t.Fatal("empty enum strings")
	}
}

// Command faultcast runs one broadcast simulation (or a Monte-Carlo
// estimate) from the command line. Two subcommands open the parameter
// space: `faultcast sweep` compiles a declarative grid and streams every
// cell's estimate from one shared worker pool, and `faultcast threshold`
// brackets a scenario's empirical feasibility threshold by adaptive
// bisection.
//
// Examples:
//
//	faultcast -graph grid:8x8 -fault omission -p 0.5
//	faultcast -graph line:32 -model radio -fault malicious -p 0.05 -trials 500
//	faultcast -graph k2 -fault limited -p 0.7 -message 0 -trials 1000
//	faultcast -graph layered:4 -feasibility
//	faultcast -graph tree:31:2 -dot > tree.dot
//	faultcast sweep -graphs line:32,grid:6x6 -ps 0.1:0.9:0.1 -trials 500
//	faultcast sweep -graphs star:8 -models radio -faults malicious -ps 0.05,0.1,0.2 -json
//	faultcast threshold -graph star:8 -source 1 -model radio -fault malicious -c 60
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"faultcast"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "sweep":
			runSweepCmd(os.Args[2:])
			return
		case "threshold":
			runThresholdCmd(os.Args[2:])
			return
		}
	}
	runOnce()
}

// parseFloats parses a comma-separated float list, expanding lo:hi:step
// range entries inclusively (e.g. "0.1:0.5:0.2" → 0.1, 0.3, 0.5).
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if strings.Contains(part, ":") {
			bounds := strings.Split(part, ":")
			if len(bounds) != 3 {
				return nil, fmt.Errorf("range %q: want lo:hi:step", part)
			}
			lo, err1 := strconv.ParseFloat(bounds[0], 64)
			hi, err2 := strconv.ParseFloat(bounds[1], 64)
			step, err3 := strconv.ParseFloat(bounds[2], 64)
			if err1 != nil || err2 != nil || err3 != nil || step <= 0 || hi < lo {
				return nil, fmt.Errorf("bad range %q", part)
			}
			for v := lo; v <= hi+step/1e6; v += step {
				out = append(out, v)
			}
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// runSweepCmd is the `faultcast sweep` mode: declare axes, compile once,
// stream every cell from the shared scheduler. The default output is an
// aligned table in grid order once the sweep finishes; -json streams
// NDJSON lines in completion order instead (the service's wire format,
// useful for piping while long sweeps run).
func runSweepCmd(args []string) {
	fs := flag.NewFlagSet("faultcast sweep", flag.ExitOnError)
	var (
		graphs     = fs.String("graphs", "", "comma-separated graph specs (required), e.g. line:32,grid:6x6")
		source     = fs.Int("source", 0, "broadcast source node (applies to every graph)")
		ps         = fs.String("ps", "", "comma-separated failure probabilities; lo:hi:step ranges allowed (required)")
		models     = fs.String("models", "", "comma-separated models (default mp)")
		faults     = fs.String("faults", "", "comma-separated fault types (default omission)")
		advs       = fs.String("adversaries", "", "comma-separated adversaries (default worst)")
		algos      = fs.String("algorithms", "", "comma-separated algorithms (default auto)")
		cs         = fs.String("cs", "", "comma-separated window constants (default 0 = derive from p)")
		messages   = fs.String("messages", "", "comma-separated source messages (default 1)")
		trials     = fs.Int("trials", 1000, "trial budget per cell")
		halfWidth  = fs.Float64("halfwidth", 0, "per-cell precision stop: 95% interval half-width (0 = off)")
		almostSafe = fs.Bool("almostsafe", true, "stop cells early once decided against the 1-1/n bound")
		seed       = fs.Uint64("seed", 1, "sweep master seed (cell seeds derive from it)")
		workers    = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		asJSON     = fs.Bool("json", false, "stream NDJSON cell results in completion order")
	)
	fs.Parse(args)
	if *graphs == "" || *ps == "" {
		fmt.Fprintln(os.Stderr, "faultcast sweep: -graphs and -ps are required")
		fs.Usage()
		os.Exit(2)
	}
	psList, err := parseFloats(*ps)
	if err != nil {
		fatal(fmt.Errorf("-ps: %w", err))
	}
	csList, err := parseFloats(*cs)
	if err != nil {
		fatal(fmt.Errorf("-cs: %w", err))
	}
	spec := faultcast.SweepSpec{
		Ps:       psList,
		WindowCs: csList,
		Messages: splitList(*messages),
		Seed:     *seed,
		Budget: faultcast.CellBudget{
			Trials:     *trials,
			HalfWidth:  *halfWidth,
			AlmostSafe: *almostSafe,
		},
	}
	for _, gs := range splitList(*graphs) {
		spec.Graphs = append(spec.Graphs, faultcast.SweepGraph{Spec: gs, Source: *source})
	}
	for _, s := range splitList(*models) {
		m, err := faultcast.ParseModel(s)
		if err != nil {
			fatal(err)
		}
		spec.Models = append(spec.Models, m)
	}
	for _, s := range splitList(*faults) {
		f, err := faultcast.ParseFault(s)
		if err != nil {
			fatal(err)
		}
		spec.Faults = append(spec.Faults, f)
	}
	for _, s := range splitList(*advs) {
		a, err := faultcast.ParseAdversary(s)
		if err != nil {
			fatal(err)
		}
		spec.Adversaries = append(spec.Adversaries, a)
	}
	for _, s := range splitList(*algos) {
		a, err := faultcast.ParseAlgorithm(s)
		if err != nil {
			fatal(err)
		}
		spec.Algorithms = append(spec.Algorithms, a)
	}
	sp, err := faultcast.CompileSweep(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d cells, %d distinct plans, %d trials/cell budget\n",
		len(sp.Cells()), sp.PlanCount(), *trials)

	var opts []faultcast.SweepOption
	if *workers > 0 {
		opts = append(opts, faultcast.WithSweepWorkers(*workers))
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		err := sp.Run(context.Background(), func(r faultcast.CellResult) {
			_ = enc.Encode(map[string]any{
				"index": r.Index, "key": r.Cell.Key,
				"graph": r.Cell.Graph.Spec, "source": r.Cell.Config.Source,
				"model": r.Cell.Config.Model.String(), "fault": r.Cell.Config.Fault.String(),
				"adversary": r.Cell.Config.Adversary.String(), "algorithm": r.Cell.Config.Algorithm.String(),
				"p": r.Cell.Config.P, "window_c": r.Cell.Config.WindowC,
				"rate": r.Estimate.Rate, "low": r.Estimate.Low, "high": r.Estimate.Hi,
				"trials": r.Estimate.Trials, "successes": r.Estimate.Succeeds,
				"almost_safe": r.Estimate.AlmostSafe(r.Cell.Config.Graph.N()),
				"rounds":      r.Cell.Rounds(), "n": r.Cell.Config.Graph.N(),
			})
		}, opts...)
		if err != nil {
			fatal(err)
		}
		return
	}
	results, err := sp.Collect(context.Background(), opts...)
	if err != nil {
		fatal(err)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Index < results[j].Index })
	fmt.Printf("%-16s %-6s %-10s %-8s %-8s %-22s %-7s %s\n",
		"graph", "model", "fault", "p", "c", "success (95% CI)", "trials", "almost-safe")
	for _, r := range results {
		cfg := r.Cell.Config
		name := r.Cell.Graph.Spec
		if name == "" {
			name = cfg.Graph.Name()
		}
		fmt.Printf("%-16s %-6s %-10s %-8.4f %-8.4g %-22s %-7d %v\n",
			name, shortModel(cfg.Model), cfg.Fault, cfg.P, cfg.WindowC,
			fmt.Sprintf("%.4f [%.3f,%.3f]", r.Estimate.Rate, r.Estimate.Low, r.Estimate.Hi),
			r.Estimate.Trials, r.Estimate.AlmostSafe(cfg.Graph.N()))
	}
}

func shortModel(m faultcast.Model) string {
	if m == faultcast.Radio {
		return "radio"
	}
	return "mp"
}

// runThresholdCmd is the `faultcast threshold` mode: bracket the
// empirical feasibility threshold of a scenario and compare it to the
// paper's closed form.
func runThresholdCmd(args []string) {
	fs := flag.NewFlagSet("faultcast threshold", flag.ExitOnError)
	var (
		graphSpec  = fs.String("graph", "star:8", "graph spec")
		source     = fs.Int("source", 0, "broadcast source node")
		model      = fs.String("model", "mp", "communication model: mp | radio")
		fault      = fs.String("fault", "malicious", "fault type: omission | malicious | limited")
		algo       = fs.String("algo", "auto", "algorithm (auto = the paper's choice)")
		adv        = fs.String("adversary", "worst", "malicious strategy")
		message    = fs.String("message", "1", "source message")
		windowC    = fs.Float64("c", 0, "window constant override (0 = derive per probe; derived windows explode near the threshold — set c explicitly for tight searches)")
		trials     = fs.Int("trials", 800, "trial budget per probe")
		resolution = fs.Float64("resolution", 1.0/32, "bracket width at which the search stops")
		seed       = fs.Uint64("seed", 1, "search master seed")
	)
	fs.Parse(args)
	g, err := faultcast.ParseGraph(*graphSpec, *seed)
	if err != nil {
		fatal(err)
	}
	cfg := faultcast.Config{
		Graph: g, Source: *source, Message: []byte(*message),
		WindowC: *windowC, Seed: *seed,
	}
	if cfg.Model, err = faultcast.ParseModel(*model); err != nil {
		fatal(err)
	}
	if cfg.Fault, err = faultcast.ParseFault(*fault); err != nil {
		fatal(err)
	}
	if cfg.Algorithm, err = faultcast.ParseAlgorithm(*algo); err != nil {
		fatal(err)
	}
	if cfg.Adversary, err = faultcast.ParseAdversary(*adv); err != nil {
		fatal(err)
	}
	res, err := faultcast.ThresholdSearch(cfg,
		faultcast.WithThresholdTrials(*trials),
		faultcast.WithThresholdResolution(*resolution))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("scenario: %s + %s on %s (n=%d, Δ=%d)\n",
		cfg.Model, cfg.Fault, g, g.N(), g.MaxDegree())
	fmt.Printf("%-10s %-22s %-10s %s\n", "probe p", "success (95% CI)", "trials", "verdict")
	for _, p := range res.Probes {
		fmt.Printf("%-10.6f %-22s %-10d %v\n", p.P,
			fmt.Sprintf("%.4f [%.3f,%.3f]", p.Estimate.Rate, p.Estimate.Low, p.Estimate.Hi),
			p.Estimate.Trials, p.Verdict)
	}
	fmt.Printf("\nempirical bracket:     p* ∈ [%.6f, %.6f]\n", res.Low, res.High)
	fmt.Printf("theoretical threshold: %.6f (%s)\n", res.Theory, thresholdLaw(cfg))
	if res.Contains(res.Theory) {
		fmt.Println("the bracket contains the theoretical threshold ✔")
	} else {
		fmt.Println("WARNING: the bracket misses the theoretical threshold (window too small, budget too tight, or finite-size effects)")
		os.Exit(1)
	}
}

func thresholdLaw(cfg faultcast.Config) string {
	switch {
	case cfg.Fault == faultcast.Omission:
		return "any p < 1, Thm 2.1"
	case cfg.Fault == faultcast.Malicious && cfg.Model == faultcast.Radio:
		return fmt.Sprintf("fixed point of p = (1-p)^%d, Thm 2.4", cfg.Graph.MaxDegree()+1)
	case cfg.Fault == faultcast.Malicious:
		return "1/2, Thms 2.2/2.3"
	default:
		return "limited malicious: 1 via timing, Thm 3.2 covers p < 1/2"
	}
}

func runOnce() {
	var (
		graphSpec  = flag.String("graph", "line:16", "graph spec (line:N, grid:RxC, star:N, tree:N:K, layered:M, gnp:N:P, ...)")
		source     = flag.Int("source", 0, "broadcast source node")
		model      = flag.String("model", "mp", "communication model: mp | radio")
		fault      = flag.String("fault", "omission", "fault type: omission | malicious | limited")
		p          = flag.Float64("p", 0.3, "per-step transmitter failure probability")
		algo       = flag.String("algo", "auto", "algorithm: auto | simple-omission | simple-malicious | flooding | composed | radio-repeat | timing-bit")
		adv        = flag.String("adversary", "worst", "malicious strategy: worst | crash | flip | noise")
		message    = flag.String("message", "1", "source message")
		seed       = flag.Uint64("seed", 1, "random seed")
		trials     = flag.Int("trials", 1, "number of Monte-Carlo trials (1 = single traced run)")
		windowC    = flag.Float64("c", 0, "window constant override (0 = derive from p)")
		feas       = flag.Bool("feasibility", false, "print the feasibility verdict for this scenario and exit")
		dot        = flag.Bool("dot", false, "print the graph in DOT format and exit")
		traceRun   = flag.Bool("trace", false, "print a per-round execution log (single runs only)")
		concurrent = flag.Bool("concurrent", false, "use the goroutine-per-node engine")
		full       = flag.Bool("full", false, "run all trials (disable early stopping at the almost-safe target)")
	)
	flag.Parse()

	g, err := faultcast.ParseGraph(*graphSpec, *seed)
	if err != nil {
		fatal(err)
	}
	if *dot {
		if err := g.WriteDOT(os.Stdout, *source); err != nil {
			fatal(err)
		}
		return
	}

	cfg := faultcast.Config{
		Graph:   g,
		Source:  *source,
		Message: []byte(*message),
		P:       *p,
		WindowC: *windowC,
		Seed:    *seed,
	}
	if cfg.Model, err = faultcast.ParseModel(*model); err != nil {
		fatal(err)
	}
	if cfg.Fault, err = faultcast.ParseFault(*fault); err != nil {
		fatal(err)
	}
	if cfg.Algorithm, err = faultcast.ParseAlgorithm(*algo); err != nil {
		fatal(err)
	}
	if cfg.Adversary, err = faultcast.ParseAdversary(*adv); err != nil {
		fatal(err)
	}

	delta := g.MaxDegree()
	if *feas {
		thr := faultcast.Threshold(cfg.Model, cfg.Fault, delta)
		fmt.Printf("scenario: %s + %s on %s (n=%d, Δ=%d)\n",
			cfg.Model, cfg.Fault, g, g.N(), delta)
		fmt.Printf("threshold: p < %.6f\n", thr)
		fmt.Printf("p = %.4f: feasible = %v\n", *p, faultcast.Feasible(cfg.Model, cfg.Fault, *p, delta))
		return
	}

	fmt.Printf("graph %s, source %d, model %s, fault %s, p=%.3f, algorithm %s\n",
		g, *source, cfg.Model, cfg.Fault, *p, cfg.Algorithm)
	if !faultcast.Feasible(cfg.Model, cfg.Fault, *p, delta) {
		fmt.Printf("warning: p=%.3f is at or above the feasibility threshold %.4f — expect failures\n",
			*p, faultcast.Threshold(cfg.Model, cfg.Fault, delta))
	}

	cfg.Concurrent = *concurrent
	if *trials <= 1 && *traceRun {
		cfg.Trace = os.Stdout
	}
	// Compile once: protocol, composition plan, radio schedule, BFS tree,
	// adversary, and horizon are shared by every trial below.
	plan, err := faultcast.Compile(cfg)
	if err != nil {
		fatal(err)
	}
	if *trials <= 1 {
		res, err := plan.Run(cfg.Seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("success=%v rounds=%d faults=%d deliveries=%d collisions=%d\n",
			res.Success, res.Rounds, res.Faults, res.Deliveries, res.Collisions)
		if !res.Success {
			fmt.Printf("first failed node: %d\n", res.FirstFailed)
			os.Exit(1)
		}
		return
	}

	var opts []faultcast.EstimateOption
	if !*full {
		opts = append(opts, faultcast.WithAlmostSafeTarget())
	}
	est, err := plan.Estimate(*trials, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("success rate: %v\n", est)
	if est.Trials < *trials {
		fmt.Printf("stopped early after %d/%d trials (interval decided against the almost-safe bound; -full disables)\n",
			est.Trials, *trials)
	}
	fmt.Printf("almost-safe (>= 1-1/n = %.4f): %v\n",
		1-1/float64(g.N()), est.AlmostSafe(g.N()))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultcast:", err)
	os.Exit(2)
}

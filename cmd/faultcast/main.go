// Command faultcast runs one broadcast simulation (or a Monte-Carlo
// estimate) from the command line.
//
// Examples:
//
//	faultcast -graph grid:8x8 -fault omission -p 0.5
//	faultcast -graph line:32 -model radio -fault malicious -p 0.05 -trials 500
//	faultcast -graph k2 -fault limited -p 0.7 -message 0 -trials 1000
//	faultcast -graph layered:4 -feasibility
//	faultcast -graph tree:31:2 -dot > tree.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"faultcast"
)

func main() {
	var (
		graphSpec  = flag.String("graph", "line:16", "graph spec (line:N, grid:RxC, star:N, tree:N:K, layered:M, gnp:N:P, ...)")
		source     = flag.Int("source", 0, "broadcast source node")
		model      = flag.String("model", "mp", "communication model: mp | radio")
		fault      = flag.String("fault", "omission", "fault type: omission | malicious | limited")
		p          = flag.Float64("p", 0.3, "per-step transmitter failure probability")
		algo       = flag.String("algo", "auto", "algorithm: auto | simple-omission | simple-malicious | flooding | composed | radio-repeat | timing-bit")
		adv        = flag.String("adversary", "worst", "malicious strategy: worst | crash | flip | noise")
		message    = flag.String("message", "1", "source message")
		seed       = flag.Uint64("seed", 1, "random seed")
		trials     = flag.Int("trials", 1, "number of Monte-Carlo trials (1 = single traced run)")
		windowC    = flag.Float64("c", 0, "window constant override (0 = derive from p)")
		feas       = flag.Bool("feasibility", false, "print the feasibility verdict for this scenario and exit")
		dot        = flag.Bool("dot", false, "print the graph in DOT format and exit")
		traceRun   = flag.Bool("trace", false, "print a per-round execution log (single runs only)")
		concurrent = flag.Bool("concurrent", false, "use the goroutine-per-node engine")
		full       = flag.Bool("full", false, "run all trials (disable early stopping at the almost-safe target)")
	)
	flag.Parse()

	g, err := faultcast.ParseGraph(*graphSpec, *seed)
	if err != nil {
		fatal(err)
	}
	if *dot {
		if err := g.WriteDOT(os.Stdout, *source); err != nil {
			fatal(err)
		}
		return
	}

	cfg := faultcast.Config{
		Graph:   g,
		Source:  *source,
		Message: []byte(*message),
		P:       *p,
		WindowC: *windowC,
		Seed:    *seed,
	}
	if cfg.Model, err = faultcast.ParseModel(*model); err != nil {
		fatal(err)
	}
	if cfg.Fault, err = faultcast.ParseFault(*fault); err != nil {
		fatal(err)
	}
	if cfg.Algorithm, err = faultcast.ParseAlgorithm(*algo); err != nil {
		fatal(err)
	}
	if cfg.Adversary, err = faultcast.ParseAdversary(*adv); err != nil {
		fatal(err)
	}

	delta := g.MaxDegree()
	if *feas {
		thr := faultcast.Threshold(cfg.Model, cfg.Fault, delta)
		fmt.Printf("scenario: %s + %s on %s (n=%d, Δ=%d)\n",
			cfg.Model, cfg.Fault, g, g.N(), delta)
		fmt.Printf("threshold: p < %.6f\n", thr)
		fmt.Printf("p = %.4f: feasible = %v\n", *p, faultcast.Feasible(cfg.Model, cfg.Fault, *p, delta))
		return
	}

	fmt.Printf("graph %s, source %d, model %s, fault %s, p=%.3f, algorithm %s\n",
		g, *source, cfg.Model, cfg.Fault, *p, cfg.Algorithm)
	if !faultcast.Feasible(cfg.Model, cfg.Fault, *p, delta) {
		fmt.Printf("warning: p=%.3f is at or above the feasibility threshold %.4f — expect failures\n",
			*p, faultcast.Threshold(cfg.Model, cfg.Fault, delta))
	}

	cfg.Concurrent = *concurrent
	if *trials <= 1 && *traceRun {
		cfg.Trace = os.Stdout
	}
	// Compile once: protocol, composition plan, radio schedule, BFS tree,
	// adversary, and horizon are shared by every trial below.
	plan, err := faultcast.Compile(cfg)
	if err != nil {
		fatal(err)
	}
	if *trials <= 1 {
		res, err := plan.Run(cfg.Seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("success=%v rounds=%d faults=%d deliveries=%d collisions=%d\n",
			res.Success, res.Rounds, res.Faults, res.Deliveries, res.Collisions)
		if !res.Success {
			fmt.Printf("first failed node: %d\n", res.FirstFailed)
			os.Exit(1)
		}
		return
	}

	var opts []faultcast.EstimateOption
	if !*full {
		opts = append(opts, faultcast.WithAlmostSafeTarget())
	}
	est, err := plan.Estimate(*trials, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("success rate: %v\n", est)
	if est.Trials < *trials {
		fmt.Printf("stopped early after %d/%d trials (interval decided against the almost-safe bound; -full disables)\n",
			est.Trials, *trials)
	}
	fmt.Printf("almost-safe (>= 1-1/n = %.4f): %v\n",
		1-1/float64(g.N()), est.AlmostSafe(g.N()))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultcast:", err)
	os.Exit(2)
}

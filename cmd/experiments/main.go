// Command experiments regenerates the paper-reproduction tables recorded
// in EXPERIMENTS.md: one experiment per theorem/lemma (see DESIGN.md for
// the index).
//
// Examples:
//
//	experiments                  # run everything at full size
//	experiments -only E3,E5      # just the impossibility experiments
//	experiments -quick           # reduced sizes (seconds instead of minutes)
//	experiments -trials 1000     # tighter confidence intervals
//	experiments -csv out/        # additionally dump each table as CSV
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"faultcast/internal/harness"
)

func main() {
	var (
		only   = flag.String("only", "", "comma-separated experiment ids (default: all)")
		quick  = flag.Bool("quick", false, "reduced graph sizes and trial counts")
		full   = flag.Bool("full", false, "run every cell's full trial count (disable early stopping on decided cells)")
		trials = flag.Int("trials", 0, "Monte-Carlo trials per cell (0 = default)")
		seed   = flag.Uint64("seed", 0, "base seed (0 = default)")
		csvDir = flag.String("csv", "", "directory to write per-table CSV files (optional)")
		list   = flag.Bool("list", false, "list experiments and exit")
		quiet  = flag.Bool("quiet", false, "suppress progress lines")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Claim)
		}
		return
	}

	opts := harness.Options{Trials: *trials, Seed: *seed, Quick: *quick, FullTrials: *full}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	var selected []harness.Experiment
	if *only == "" {
		selected = harness.Registry()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := harness.Find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	for _, e := range selected {
		fmt.Printf("== %s: %s ==\n\n", e.ID, e.Claim)
		for i, t := range e.Run(opts) {
			t.Render(os.Stdout)
			fmt.Println()
			if *csvDir != "" {
				name := fmt.Sprintf("%s_%d.csv", strings.ToLower(e.ID), i+1)
				f, err := os.Create(filepath.Join(*csvDir, name))
				if err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
					os.Exit(1)
				}
				t.RenderCSV(f)
				f.Close()
			}
		}
	}
}

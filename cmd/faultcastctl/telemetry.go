package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"faultcast/internal/telemetry"
)

// cmdTrace lists retained traces (no argument) or renders one span tree.
//
//	faultcastctl trace              recent + slowest retained traces
//	faultcastctl trace ID [ID...]   render each trace's span tree
//
// Every faultcastd response carries a trace_id; feed it back here while
// the server still retains the trace (bounded ring + slowest-N index).
func cmdTrace(c *client, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	fs.Parse(args)
	ids := fs.Args()
	if len(ids) == 0 {
		body, err := c.get("/v1/trace")
		if err != nil {
			return err
		}
		var idx telemetry.Index
		if err := json.Unmarshal(body, &idx); err != nil {
			return err
		}
		fmt.Printf("traces: %d started, %d finished, ring capacity %d\n", idx.Started, idx.Finished, idx.Capacity)
		tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
		section := func(title string, list []telemetry.Summary) {
			if len(list) == 0 {
				return
			}
			fmt.Fprintf(tw, "%s\tNAME\tSTART\tDURATION\n", title)
			for _, s := range list {
				fmt.Fprintf(tw, "%s\t%s\t%s\t%.3fms\n", s.ID, s.Name, s.Start, s.DurationMs)
			}
		}
		section("RECENT", idx.Recent)
		section("SLOWEST", idx.Slowest)
		return tw.Flush()
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		body, err := c.get("/v1/trace/" + id)
		if err != nil {
			return err
		}
		var t telemetry.TraceJSON
		if err := json.Unmarshal(body, &t); err != nil {
			return err
		}
		fmt.Printf("trace %s (%s) started %s, %.3fms total\n", t.ID, t.Name, t.Start, t.DurationMs)
		renderSpan(os.Stdout, t.Root, 0)
	}
	return nil
}

// renderSpan prints one span line — offset from trace start, duration,
// name, attrs — then recurses into children in start order.
func renderSpan(w io.Writer, sp *telemetry.Span, depth int) {
	if sp == nil {
		return
	}
	attrs := ""
	if len(sp.Attrs) > 0 {
		parts := make([]string, len(sp.Attrs))
		for i, a := range sp.Attrs {
			parts[i] = a.Key + "=" + a.Value
		}
		attrs = "  {" + strings.Join(parts, " ") + "}"
	}
	fmt.Fprintf(w, "%s%-12s +%.3fms %.3fms%s\n",
		strings.Repeat("  ", depth+1), sp.Name,
		float64(sp.StartNs)/1e6, float64(sp.DurNs)/1e6, attrs)
	for _, child := range sp.Children {
		renderSpan(w, child, depth+1)
	}
}

// cmdMetrics scrapes GET /metrics, verifies it parses as Prometheus text
// exposition format, and prints it. -names prints the family ledger
// ("name kind" per line) instead; -check FILE additionally diffs that
// ledger against a committed golden (the CI metrics-smoke gate).
func cmdMetrics(c *client, args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	names := fs.Bool("names", false, "print the sorted family ledger (name kind) instead of the raw text")
	check := fs.String("check", "", "verify the family ledger matches this golden file (implies parsing)")
	fs.Parse(args)
	body, err := c.get("/metrics")
	if err != nil {
		return err
	}
	m, err := telemetry.ParseText(bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("metrics: scrape does not parse as Prometheus text: %w", err)
	}
	ledger := strings.Join(m.Families(), "\n") + "\n"
	if *check != "" {
		want, err := os.ReadFile(*check)
		if err != nil {
			return err
		}
		if string(want) != ledger {
			return fmt.Errorf("metrics: family ledger differs from %s — metric names are a compatibility surface; update the golden (and DESIGN.md) deliberately:\n%s",
				*check, ledgerDiff(string(want), ledger))
		}
		fmt.Printf("metrics: %d families match %s\n", len(m.Families()), *check)
		return nil
	}
	if *names {
		_, err := io.WriteString(os.Stdout, ledger)
		return err
	}
	_, err = os.Stdout.Write(body)
	return err
}

// ledgerDiff renders a line-set diff of two name ledgers (order-sensitive
// sets are fine here: both sides are sorted).
func ledgerDiff(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(want), "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(got), "\n") {
		gotSet[l] = true
	}
	var lines []string
	for l := range gotSet {
		if !wantSet[l] {
			lines = append(lines, "+ "+l)
		}
	}
	for l := range wantSet {
		if !gotSet[l] {
			lines = append(lines, "- "+l)
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// watchStats polls /metrics every interval and prints one compact delta
// line per tick: request throughput, cache hit rate, and the window's
// p95 per endpoint class, all computed client-side from counter and
// histogram-bucket deltas — no server-side windowing needed.
func watchStats(c *client, interval time.Duration, iterations int) error {
	scrape := func() (*telemetry.Metrics, error) {
		body, err := c.get("/metrics")
		if err != nil {
			return nil, err
		}
		return telemetry.ParseText(bytes.NewReader(body))
	}
	prev, err := scrape()
	if err != nil {
		return err
	}
	fmt.Printf("%-9s %9s %9s %7s %12s %12s %12s\n",
		"TIME", "REQ/S", "EST/S", "HIT%", "P95(est)", "P95(sweep)", "P95(shard)")
	for i := 0; iterations <= 0 || i < iterations; i++ {
		time.Sleep(interval)
		cur, err := scrape()
		if err != nil {
			return err
		}
		d := telemetry.Delta(prev, cur)
		secs := interval.Seconds()
		reqs := d["faultcast_http_requests_total"] / secs
		ests := d[`faultcast_api_requests_total{endpoint="estimate"}`] / secs
		served := d[`faultcast_api_requests_total{endpoint="estimate"}`] + d["faultcast_sweep_cells_total"]
		hits := d["faultcast_cache_hits_total"] + d["faultcast_sweep_cell_cache_hits_total"] +
			d[`faultcast_coalesced_total{outcome="shared"}`]
		hitRate := "-"
		if served > 0 {
			hitRate = fmt.Sprintf("%.0f%%", 100*hits/served)
		}
		p95 := func(endpoint string) string {
			v, ok := telemetry.HistogramQuantile(prev, cur, "faultcast_request_duration_seconds",
				map[string]string{"endpoint": endpoint}, 0.95)
			if !ok || v == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1fms", v*1e3)
		}
		fmt.Printf("%-9s %9.1f %9.1f %7s %12s %12s %12s\n",
			time.Now().Format("15:04:05"), reqs, ests, hitRate,
			p95("estimate"), p95("sweep"), p95("shard"))
		prev = cur
	}
	return nil
}

package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"faultcast/internal/store"
)

// cmdStore inspects and maintains a faultcastd tally store directory,
// offline — it reads the segment files directly, no daemon needed (run
// gc against a live daemon's directory only after draining it; the
// daemon re-simulates anything removed, but the stored prefixes are
// gone).
//
//	faultcastctl store ls -dir DIR              list segments
//	faultcastctl store verify -dir DIR          decode every frame, report corruption
//	faultcastctl store gc -dir DIR [-max-age D] [-max-bytes N] [-dry-run]
func cmdStore(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: faultcastctl store {ls|verify|gc} -dir DIR [flags]")
	}
	sub, args := args[0], args[1:]
	fs := flag.NewFlagSet("store "+sub, flag.ExitOnError)
	dir := fs.String("dir", "", "tally store directory (as given to faultcastd -store)")
	maxAge := fs.Duration("max-age", 0, "gc: remove segments not written for this long (0 = no age limit)")
	maxBytes := fs.Int64("max-bytes", 0, "gc: then remove oldest segments until this many bytes remain (0 = no size limit)")
	dryRun := fs.Bool("dry-run", false, "gc: report what would be removed without removing it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("store %s: -dir is required", sub)
	}
	switch sub {
	case "ls", "verify":
		infos, err := store.Scan(*dir)
		if err != nil {
			return err
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "PLAN KEY\tSEED\tBATCH\tTRIALS\tBUCKETS\tBYTES\tAGE\tSTATE")
		var trials, bytes int64
		dirty := 0
		for _, si := range infos {
			state := "ok"
			if !si.Clean() {
				state = fmt.Sprintf("corrupt: %d frames, %d tail bytes", si.CorruptFrames, si.TailBytes)
				dirty++
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%s\t%s\n",
				short(si.PlanKey), si.BaseSeed, si.Batch, si.Trials, si.Buckets,
				si.Bytes, time.Since(si.ModTime).Round(time.Second), state)
			trials += int64(si.Trials)
			bytes += si.Bytes
		}
		tw.Flush()
		fmt.Printf("%d segments, %d stored trials, %d bytes\n", len(infos), trials, bytes)
		if sub == "verify" {
			if dirty > 0 {
				// Corruption is recoverable (the intact prefixes still
				// serve), but verify exists to notice it: non-zero exit.
				return fmt.Errorf("%d of %d segments have corrupt frames (intact prefixes still loadable)", dirty, len(infos))
			}
			fmt.Println("all segments verified clean")
		}
		return nil
	case "gc":
		if *dryRun {
			infos, err := store.Scan(*dir)
			if err != nil {
				return err
			}
			var total int64
			for _, si := range infos {
				total += si.Bytes
			}
			now := time.Now()
			removed := 0
			for _, si := range infos {
				age := now.Sub(si.ModTime)
				if *maxAge > 0 && age > *maxAge {
					fmt.Printf("would remove %s (age %s)\n", si.Path, age.Round(time.Second))
					removed++
				}
			}
			if *maxBytes > 0 && total > *maxBytes {
				fmt.Printf("would then trim oldest segments from %d toward %d bytes\n", total, *maxBytes)
			}
			if removed == 0 {
				fmt.Println("nothing past -max-age")
			}
			return nil
		}
		removed, err := store.GC(*dir, *maxAge, *maxBytes, time.Now())
		for _, si := range removed {
			fmt.Printf("removed %s (%d trials, %d bytes)\n", si.Path, si.Trials, si.Bytes)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%d segments removed\n", len(removed))
		return nil
	default:
		return fmt.Errorf("unknown store subcommand %q (want ls, verify, or gc)", sub)
	}
}

// short elides a 64-hex plan key for table display.
func short(key string) string {
	if len(key) > 16 {
		return key[:16] + "…"
	}
	return key
}

// Command faultcastctl is the client of faultcastd.
//
//	faultcastctl [-addr URL] health                 liveness check
//	faultcastctl [-addr URL] scenarios              request vocabulary + limits
//	faultcastctl [-addr URL] stats [-out FILE]      request/cache counters
//	faultcastctl [-addr URL] estimate -graph SPEC -p P [flags]
//	faultcastctl [-addr URL] smoke [flags]          concurrent load smoke test
//
// smoke fires a burst of concurrent identical estimation requests plus a
// spread of distinct ones, verifies every answer, and checks that the
// server amortized the identical burst (cache hits + coalescing, not one
// execution per request). CI runs it against a race-built faultcastd and
// archives the resulting /v1/stats snapshot next to BENCH_engine.json.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"faultcast/internal/service"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8347", "faultcastd base URL")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: faultcastctl [-addr URL] {health|scenarios|stats|estimate|smoke} [flags]")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	c := &client{base: *addr, http: &http.Client{Timeout: 5 * time.Minute}}
	var err error
	switch args[0] {
	case "health":
		err = c.getJSONPrint("/healthz")
	case "scenarios":
		err = c.getJSONPrint("/v1/scenarios")
	case "stats":
		err = cmdStats(c, args[1:])
	case "estimate":
		err = cmdEstimate(c, args[1:])
	case "smoke":
		err = cmdSmoke(c, args[1:])
	default:
		err = fmt.Errorf("unknown command %q", args[0])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultcastctl:", err)
		os.Exit(1)
	}
}

type client struct {
	base string
	http *http.Client
}

func (c *client) get(path string) ([]byte, error) {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", path, resp.Status, body)
	}
	return body, nil
}

func (c *client) getJSONPrint(path string) error {
	body, err := c.get(path)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(body)
	return err
}

// estimate posts one request and decodes the answer; on a non-2xx status
// the structured error is returned along with the HTTP status code.
func (c *client) estimate(req service.EstimateRequest) (service.EstimateResponse, int, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return service.EstimateResponse{}, 0, err
	}
	resp, err := c.http.Post(c.base+"/v1/estimate", "application/json", bytes.NewReader(payload))
	if err != nil {
		return service.EstimateResponse{}, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return service.EstimateResponse{}, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		var er service.ErrorResponse
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			return service.EstimateResponse{}, resp.StatusCode, fmt.Errorf("%s (code=%s)", er.Error, er.Code)
		}
		return service.EstimateResponse{}, resp.StatusCode, fmt.Errorf("%s: %s", resp.Status, body)
	}
	var er service.EstimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		return service.EstimateResponse{}, resp.StatusCode, err
	}
	return er, resp.StatusCode, nil
}

func cmdStats(c *client, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	out := fs.String("out", "", "also write the stats JSON to this file")
	fs.Parse(args)
	body, err := c.get("/v1/stats")
	if err != nil {
		return err
	}
	if *out != "" {
		if err := os.WriteFile(*out, body, 0o644); err != nil {
			return err
		}
	}
	_, err = os.Stdout.Write(body)
	return err
}

func cmdEstimate(c *client, args []string) error {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	var req service.EstimateRequest
	fs.StringVar(&req.Graph, "graph", "", "graph spec (required), e.g. grid:8x8")
	fs.IntVar(&req.Source, "source", 0, "broadcast source node")
	fs.StringVar(&req.Message, "message", "", "source message (default \"1\")")
	fs.StringVar(&req.Model, "model", "", "mp | radio")
	fs.StringVar(&req.Fault, "fault", "", "omission | malicious | limited")
	fs.Float64Var(&req.P, "p", 0.3, "per-step transmitter failure probability")
	fs.StringVar(&req.Algorithm, "algo", "", "algorithm (default auto)")
	fs.StringVar(&req.Adversary, "adversary", "", "worst | crash | flip | noise")
	fs.Float64Var(&req.WindowC, "c", 0, "window constant override")
	fs.Float64Var(&req.Alpha, "alpha", 0, "Theorem 3.2 exponent for composed")
	fs.Uint64Var(&req.Seed, "seed", 0, "base seed (default 1)")
	fs.IntVar(&req.Rounds, "rounds", 0, "round-horizon override")
	fs.IntVar(&req.Trials, "trials", 0, "trial budget (default server's)")
	fs.Float64Var(&req.HalfWidth, "half-width", 0, "stop once the 95% half-width reaches this")
	fs.Parse(args)
	if req.Graph == "" {
		return fmt.Errorf("estimate: -graph is required")
	}
	er, _, err := c.estimate(req)
	if err != nil {
		return err
	}
	fmt.Printf("rate %.4f [%.4f, %.4f] (%d/%d trials, half-width %.4f)\n",
		er.Rate, er.Low, er.High, er.Successes, er.Trials, er.HalfWidth)
	fmt.Printf("almost-safe (>= %.4f): %v\n", er.AlmostSafeTarget, er.Almostsafe)
	fmt.Printf("served: %s (%d trials simulated for this request), plan horizon %d rounds, n=%d\n",
		er.Served, er.TrialsSimulated, er.Rounds, er.N)
	return nil
}

func cmdSmoke(c *client, args []string) error {
	fs := flag.NewFlagSet("smoke", flag.ExitOnError)
	requests := fs.Int("requests", 64, "concurrent identical requests in the coalescing burst")
	distinct := fs.Int("distinct", 8, "additional distinct scenarios")
	graph := fs.String("graph", "grid:6x6", "graph spec of the identical burst")
	p := fs.Float64("p", 0.5, "failure probability of the identical burst")
	trials := fs.Int("trials", 2000, "trial budget per request")
	out := fs.String("out", "", "write the post-run /v1/stats JSON to this file")
	fs.Parse(args)

	if _, err := c.get("/healthz"); err != nil {
		return fmt.Errorf("smoke: server not healthy: %w", err)
	}
	// Snapshot the counters so the verdict below reads this run's deltas —
	// the server need not be fresh.
	var before service.Stats
	if body, err := c.get("/v1/stats"); err != nil {
		return err
	} else if err := json.Unmarshal(body, &before); err != nil {
		return err
	}

	// Phase 1: a concurrent burst of identical requests. The server must
	// answer every one, executing the underlying plan far fewer times
	// than it was asked (singleflight + result cache).
	burst := service.EstimateRequest{Graph: *graph, P: *p, Trials: *trials}
	var wg sync.WaitGroup
	errs := make([]error, *requests)
	served := make([]string, *requests)
	startBurst := time.Now()
	for i := 0; i < *requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			er, _, err := c.estimate(burst)
			errs[i] = err
			served[i] = er.Served
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("smoke: burst request %d: %w", i, err)
		}
	}
	counts := map[string]int{}
	for _, s := range served {
		counts[s]++
	}
	fmt.Printf("burst: %d identical requests in %v, served: %v\n",
		*requests, time.Since(startBurst).Round(time.Millisecond), counts)

	// Phase 2: distinct scenarios exercise compile + plan cache churn,
	// including a repeat pass that must hit the caches.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < *distinct; i++ {
			req := service.EstimateRequest{
				Graph:  fmt.Sprintf("line:%d", 16+4*i),
				P:      0.2 + 0.05*float64(i%4),
				Trials: *trials / 4,
			}
			if _, _, err := c.estimate(req); err != nil {
				return fmt.Errorf("smoke: distinct request %d (pass %d): %w", i, pass, err)
			}
		}
	}

	body, err := c.get("/v1/stats")
	if err != nil {
		return err
	}
	var st service.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		return err
	}
	fmt.Printf("stats: executions=%d coalesced=%d cache_hits=%d plan_compiles=%d trials_simulated=%d rejected=%d\n",
		st.Executions, st.Coalesced, st.CacheHits, st.PlanCompiles, st.TrialsSimulated, st.Rejected)
	if *out != "" {
		if err := os.WriteFile(*out, body, 0o644); err != nil {
			return err
		}
		fmt.Printf("stats written to %s\n", *out)
	}

	// The smoke's verdict: the burst must have been amortized. Identical
	// requests may coalesce or hit the cache, but executing the plan once
	// per caller means the serving layer did nothing.
	executions := st.Executions - before.Executions
	if executions >= uint64(*requests) {
		return fmt.Errorf("smoke: %d executions for %d identical requests — no amortization", executions, *requests)
	}
	// This run compiled at most the burst scenario plus the distinct
	// ones; in particular the repeat pass must not have recompiled.
	if compiles := st.PlanCompiles - before.PlanCompiles; compiles > uint64(1+*distinct) {
		return fmt.Errorf("smoke: %d plan compiles for %d distinct scenarios", compiles, 1+*distinct)
	}
	fmt.Println("smoke: OK")
	return nil
}

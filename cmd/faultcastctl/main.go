// Command faultcastctl is the client of faultcastd.
//
//	faultcastctl [-addr URL] health                 liveness check
//	faultcastctl [-addr URL] scenarios              request vocabulary + limits
//	faultcastctl [-addr URL] stats [-out FILE]      request/cache counters
//	faultcastctl [-addr URL] estimate -graph SPEC -p P [flags]
//	faultcastctl [-addr URL] sweep -graphs A,B -ps P1,P2 [flags]
//	faultcastctl [-addr URL] workers                coordinator fleet health
//	faultcastctl [-addr URL] smoke [flags]          concurrent load smoke test
//	faultcastctl [-addr URL] bench [flags]          open-loop service load bench
//
// smoke fires a burst of concurrent identical estimation requests plus a
// spread of distinct ones, verifies every answer, and checks that the
// server amortized the identical burst (cache hits + coalescing, not one
// execution per request). CI runs it against a race-built faultcastd and
// archives the resulting /v1/stats snapshot next to BENCH_engine.json.
//
// bench drives internal/load's deterministic open-loop schedule at the
// server: a seeded mix of hot/cold estimates and sweeps arriving at a
// configured rate (constant or Poisson), reported as per-class latency
// percentiles, achieved vs offered throughput, and the server's
// /v1/stats deltas over the measured window. -out writes
// BENCH_service.json; -slo turns the run into a CI gate
// (-slo p95=250ms,reject_rate=0.05 exits non-zero on violation).
//
// sweep streams a /v1/sweep grid; -sort reorders the NDJSON cell lines
// into index order, making the output a deterministic artifact — the
// cluster CI job diffs a coordinator-run sweep against a single-node one
// byte for byte. workers renders a coordinator's per-worker health, shard
// counters, and plan-cache hit rates from /v1/stats.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"faultcast/internal/service"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8347", "faultcastd base URL")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: faultcastctl [-addr URL] {health|scenarios|stats|trace|metrics|estimate|sweep|workers|smoke|bench|store} [flags]")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	c := &client{base: *addr, http: &http.Client{Timeout: 5 * time.Minute}}
	var err error
	switch args[0] {
	case "health":
		err = c.getJSONPrint("/healthz")
	case "scenarios":
		err = c.getJSONPrint("/v1/scenarios")
	case "stats":
		err = cmdStats(c, args[1:])
	case "trace":
		err = cmdTrace(c, args[1:])
	case "metrics":
		err = cmdMetrics(c, args[1:])
	case "estimate":
		err = cmdEstimate(c, args[1:])
	case "sweep":
		err = cmdSweep(c, args[1:])
	case "workers":
		err = cmdWorkers(c)
	case "smoke":
		err = cmdSmoke(c, args[1:])
	case "bench":
		err = cmdBench(c, args[1:])
	case "store":
		err = cmdStore(args[1:])
	default:
		err = fmt.Errorf("unknown command %q", args[0])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultcastctl:", err)
		os.Exit(1)
	}
}

type client struct {
	base string
	http *http.Client
}

func (c *client) get(path string) ([]byte, error) {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", path, resp.Status, body)
	}
	return body, nil
}

func (c *client) getJSONPrint(path string) error {
	body, err := c.get(path)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(body)
	return err
}

// estimate posts one request and decodes the answer; on a non-2xx status
// the structured error is returned along with the HTTP status code.
func (c *client) estimate(req service.EstimateRequest) (service.EstimateResponse, int, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return service.EstimateResponse{}, 0, err
	}
	resp, err := c.http.Post(c.base+"/v1/estimate", "application/json", bytes.NewReader(payload))
	if err != nil {
		return service.EstimateResponse{}, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return service.EstimateResponse{}, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		var er service.ErrorResponse
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			return service.EstimateResponse{}, resp.StatusCode, fmt.Errorf("%s (code=%s)", er.Error, er.Code)
		}
		return service.EstimateResponse{}, resp.StatusCode, fmt.Errorf("%s: %s", resp.Status, body)
	}
	var er service.EstimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		return service.EstimateResponse{}, resp.StatusCode, err
	}
	return er, resp.StatusCode, nil
}

func cmdStats(c *client, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	out := fs.String("out", "", "also write the stats JSON to this file")
	watch := fs.Duration("watch", 0, "poll every interval and print a compact delta line (reqs/s, hit rate, p95 by endpoint) instead of the JSON dump")
	count := fs.Int("count", 0, "with -watch, stop after this many intervals (0 = until interrupted)")
	fs.Parse(args)
	if *watch > 0 {
		return watchStats(c, *watch, *count)
	}
	body, err := c.get("/v1/stats")
	if err != nil {
		return err
	}
	if *out != "" {
		if err := os.WriteFile(*out, body, 0o644); err != nil {
			return err
		}
	}
	_, err = os.Stdout.Write(body)
	return err
}

func cmdEstimate(c *client, args []string) error {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	var req service.EstimateRequest
	fs.StringVar(&req.Graph, "graph", "", "graph spec (required), e.g. grid:8x8")
	fs.IntVar(&req.Source, "source", 0, "broadcast source node")
	fs.StringVar(&req.Message, "message", "", "source message (default \"1\")")
	fs.StringVar(&req.Model, "model", "", "mp | radio")
	fs.StringVar(&req.Fault, "fault", "", "omission | malicious | limited")
	fs.Float64Var(&req.P, "p", 0.3, "per-step transmitter failure probability")
	fs.StringVar(&req.Algorithm, "algo", "", "algorithm (default auto)")
	fs.StringVar(&req.Adversary, "adversary", "", "worst | crash | flip | noise")
	fs.Float64Var(&req.WindowC, "c", 0, "window constant override")
	fs.Float64Var(&req.Alpha, "alpha", 0, "Theorem 3.2 exponent for composed")
	fs.Uint64Var(&req.Seed, "seed", 0, "base seed (default 1)")
	fs.IntVar(&req.Rounds, "rounds", 0, "round-horizon override")
	fs.IntVar(&req.Trials, "trials", 0, "trial budget (default server's)")
	fs.Float64Var(&req.HalfWidth, "half-width", 0, "stop once the 95% half-width reaches this")
	fs.Parse(args)
	if req.Graph == "" {
		return fmt.Errorf("estimate: -graph is required")
	}
	er, _, err := c.estimate(req)
	if err != nil {
		return err
	}
	fmt.Printf("rate %.4f [%.4f, %.4f] (%d/%d trials, half-width %.4f)\n",
		er.Rate, er.Low, er.High, er.Successes, er.Trials, er.HalfWidth)
	fmt.Printf("almost-safe (>= %.4f): %v\n", er.AlmostSafeTarget, er.Almostsafe)
	fmt.Printf("served: %s (%d trials simulated for this request), plan horizon %d rounds, n=%d\n",
		er.Served, er.TrialsSimulated, er.Rounds, er.N)
	return nil
}

// cmdSweep posts a sweep and streams its NDJSON. With -sort, cell lines
// are buffered and re-emitted in index order (completion order is
// scheduling-dependent; index order is deterministic), followed by the
// summary line — so two runs of the same grid on any topology of
// machines produce byte-identical files.
func cmdSweep(c *client, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	graphs := fs.String("graphs", "", "comma-separated graph specs (required), e.g. grid:6x6,line:32")
	ps := fs.String("ps", "", "comma-separated failure probabilities (required)")
	models := fs.String("models", "", "comma-separated model axis (mp, radio)")
	faults := fs.String("faults", "", "comma-separated fault axis")
	algos := fs.String("algos", "", "comma-separated algorithm axis")
	trials := fs.Int("trials", 0, "per-cell trial budget (default server's)")
	seed := fs.Uint64("seed", 0, "sweep master seed (default 1)")
	almostSafe := fs.Bool("almost-safe", false, "stop each cell once decided against its almost-safety bound")
	sortCells := fs.Bool("sort", false, "emit cell lines in index order instead of completion order")
	out := fs.String("out", "", "also write the NDJSON to this file")
	fs.Parse(args)
	if *graphs == "" || *ps == "" {
		return fmt.Errorf("sweep: -graphs and -ps are required")
	}
	req := service.SweepRequest{
		Graphs:         splitList(*graphs),
		Models:         splitList(*models),
		Faults:         splitList(*faults),
		Algorithms:     splitList(*algos),
		Trials:         *trials,
		Seed:           *seed,
		AlmostSafeStop: *almostSafe,
	}
	for _, p := range splitList(*ps) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return fmt.Errorf("sweep: bad p %q", p)
		}
		req.Ps = append(req.Ps, v)
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+"/v1/sweep", "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("sweep: %s: %s", resp.Status, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	if !*sortCells {
		// Stream: the server flushes each cell as it decides, so the grid
		// fills in live on stdout (and in -out, line by line).
		var outFile *os.File
		if *out != "" {
			var err error
			if outFile, err = os.Create(*out); err != nil {
				return err
			}
			defer outFile.Close()
		}
		for sc.Scan() {
			line := sc.Text()
			if line == "" {
				continue
			}
			fmt.Println(line)
			if outFile != nil {
				fmt.Fprintln(outFile, line)
			}
		}
		return sc.Err()
	}
	// -sort: buffer, reorder cells by index, emit the summary last — a
	// deterministic artifact two runs of the same grid reproduce byte for
	// byte whatever the completion order was.
	type cellLine struct {
		index int
		line  string
	}
	var cells []cellLine
	var tail []string // the summary (and anything unrecognized), in arrival order
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		var probe struct {
			Index *int `json:"index"`
		}
		if json.Unmarshal([]byte(line), &probe) == nil && probe.Index != nil {
			cells = append(cells, cellLine{index: *probe.Index, line: line})
		} else {
			tail = append(tail, line)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	var buf bytes.Buffer
	sort.Slice(cells, func(i, j int) bool { return cells[i].index < cells[j].index })
	for _, cl := range cells {
		fmt.Fprintln(&buf, cl.line)
	}
	for _, line := range tail {
		fmt.Fprintln(&buf, line)
	}
	if *out != "" {
		if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
			return err
		}
	}
	_, err = os.Stdout.Write(buf.Bytes())
	return err
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// cmdWorkers renders a coordinator's fleet view from /v1/stats: one line
// per configured worker with health, shard counters, and the plan-cache
// hit rate of its shards, then the coordinator's dispatch totals.
func cmdWorkers(c *client) error {
	body, err := c.get("/v1/stats")
	if err != nil {
		return err
	}
	var st service.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		return err
	}
	if st.Cluster == nil {
		fmt.Println("no workers configured (the server is not a coordinator; start faultcastd with -workers)")
		return nil
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "WORKER\tSTATE\tINFLIGHT\tOK\tFAILED\tCONSEC\tTRIALS\tPLAN CACHE\tLAST ERROR")
	for _, w := range st.Cluster.Workers {
		state := "up"
		if !w.Healthy {
			state = fmt.Sprintf("down %.0fs", w.DownForSeconds)
		}
		hitRate := "-"
		if total := w.PlanCacheHits + w.PlanCompiles; total > 0 {
			hitRate = fmt.Sprintf("%d/%d (%.0f%%)", w.PlanCacheHits, total, 100*float64(w.PlanCacheHits)/float64(total))
		}
		lastErr := w.LastError
		if lastErr == "" {
			lastErr = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%s\t%s\n",
			w.URL, state, w.Inflight, w.ShardsOK, w.ShardsFailed, w.ConsecutiveFailures, w.TrialsExecuted, hitRate, lastErr)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("cells distributed %d (local %d), shards dispatched %d, retries %d, local failovers %d, shard size %d trials\n",
		st.Cluster.CellsDistributed, st.Cluster.LocalCells, st.Cluster.ShardsDispatched,
		st.Cluster.ShardRetries, st.Cluster.LocalFailovers, st.Cluster.ShardTrials)
	return nil
}

func cmdSmoke(c *client, args []string) error {
	fs := flag.NewFlagSet("smoke", flag.ExitOnError)
	requests := fs.Int("requests", 64, "concurrent identical requests in the coalescing burst")
	distinct := fs.Int("distinct", 8, "additional distinct scenarios")
	graph := fs.String("graph", "grid:6x6", "graph spec of the identical burst")
	p := fs.Float64("p", 0.5, "failure probability of the identical burst")
	trials := fs.Int("trials", 2000, "trial budget per request")
	out := fs.String("out", "", "write the post-run /v1/stats JSON to this file")
	fs.Parse(args)

	if _, err := c.get("/healthz"); err != nil {
		return fmt.Errorf("smoke: server not healthy: %w", err)
	}
	// Snapshot the counters so the verdict below reads this run's deltas —
	// the server need not be fresh.
	var before service.Stats
	if body, err := c.get("/v1/stats"); err != nil {
		return err
	} else if err := json.Unmarshal(body, &before); err != nil {
		return err
	}

	// Phase 1: a concurrent burst of identical requests. The server must
	// answer every one, executing the underlying plan far fewer times
	// than it was asked (singleflight + result cache).
	burst := service.EstimateRequest{Graph: *graph, P: *p, Trials: *trials}
	var wg sync.WaitGroup
	errs := make([]error, *requests)
	served := make([]string, *requests)
	startBurst := time.Now()
	for i := 0; i < *requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			er, _, err := c.estimate(burst)
			errs[i] = err
			served[i] = er.Served
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("smoke: burst request %d: %w", i, err)
		}
	}
	counts := map[string]int{}
	for _, s := range served {
		counts[s]++
	}
	fmt.Printf("burst: %d identical requests in %v, served: %v\n",
		*requests, time.Since(startBurst).Round(time.Millisecond), counts)

	// Phase 2: distinct scenarios exercise compile + plan cache churn,
	// including a repeat pass that must hit the caches.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < *distinct; i++ {
			req := service.EstimateRequest{
				Graph:  fmt.Sprintf("line:%d", 16+4*i),
				P:      0.2 + 0.05*float64(i%4),
				Trials: *trials / 4,
			}
			if _, _, err := c.estimate(req); err != nil {
				return fmt.Errorf("smoke: distinct request %d (pass %d): %w", i, pass, err)
			}
		}
	}

	body, err := c.get("/v1/stats")
	if err != nil {
		return err
	}
	var st service.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		return err
	}
	fmt.Printf("stats: executions=%d coalesced=%d cache_hits=%d plan_compiles=%d trials_simulated=%d rejected=%d\n",
		st.Executions, st.Coalesced, st.CacheHits, st.PlanCompiles, st.TrialsSimulated, st.Rejected)
	if *out != "" {
		if err := os.WriteFile(*out, body, 0o644); err != nil {
			return err
		}
		fmt.Printf("stats written to %s\n", *out)
	}

	// The smoke's verdict: the burst must have been amortized. Identical
	// requests may coalesce or hit the cache, but executing the plan once
	// per caller means the serving layer did nothing.
	executions := st.Executions - before.Executions
	if executions >= uint64(*requests) {
		return fmt.Errorf("smoke: %d executions for %d identical requests — no amortization", executions, *requests)
	}
	// This run compiled at most the burst scenario plus the distinct
	// ones; in particular the repeat pass must not have recompiled.
	if compiles := st.PlanCompiles - before.PlanCompiles; compiles > uint64(1+*distinct) {
		return fmt.Errorf("smoke: %d plan compiles for %d distinct scenarios", compiles, 1+*distinct)
	}
	fmt.Println("smoke: OK")
	return nil
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"faultcast/internal/hist"
	"faultcast/internal/load"
	"faultcast/internal/service"
	"faultcast/internal/telemetry"
)

// benchFile is the BENCH_service.json schema: the same header discipline
// as BENCH_engine.json (toolchain, maxprocs, CPU model — of the CLIENT
// host; the server's limits identify its side), then the workload spec,
// the client-observed per-class results, the server's /v1/stats deltas
// over the measured window, the server-observed latency summaries for
// cross-checking, and the SLO verdict.
type benchFile struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	MaxProcs  int    `json:"maxprocs"`
	CPU       string `json:"cpu,omitempty"`
	// Server echoes the target's /v1/scenarios limits — the options the
	// measured numbers were taken against.
	Server   service.ScenarioLimits `json:"server"`
	Workload load.Spec              `json:"workload"`
	Client   *load.Report           `json:"client"`
	// StatsDelta is the server-side story of the measured window: where
	// the answers came from (cache/coalesce/refine/execute) and what was
	// refused.
	StatsDelta statsDelta `json:"stats_delta"`
	// ServerLatency is the server's own per-endpoint view at run end
	// (cumulative since server start — comparable to Client when the
	// server is fresh, as in CI).
	ServerLatency map[string]hist.Summary `json:"server_latency"`
	// MetricsDelta is the /metrics counter story of the same window,
	// keyed by canonical series name (faultcast_..._total{labels}). It
	// restates StatsDelta through the Prometheus surface — a divergence
	// between the two is itself a bug — and additionally carries the
	// per-core and per-worker breakdowns /v1/stats does not expose.
	MetricsDelta map[string]float64 `json:"metrics_delta,omitempty"`
	SLO          map[string]string  `json:"slo,omitempty"`
	SLOOk        bool               `json:"slo_ok"`
	Violations   []string           `json:"violations,omitempty"`
}

// statsDelta is the difference of two /v1/stats snapshots taken around
// the measured window.
type statsDelta struct {
	Requests           uint64 `json:"requests"`
	EstimateRequests   uint64 `json:"estimate_requests"`
	SweepRequests      uint64 `json:"sweep_requests"`
	SweepCells         uint64 `json:"sweep_cells"`
	SweepCellCacheHits uint64 `json:"sweep_cell_cache_hits"`
	BadRequests        uint64 `json:"bad_requests"`
	CacheHits          uint64 `json:"cache_hits"`
	Coalesced          uint64 `json:"coalesced"`
	CoalescedErrors    uint64 `json:"coalesced_errors"`
	Executions         uint64 `json:"executions"`
	Refines            uint64 `json:"refines"`
	Rejected           uint64 `json:"rejected"`
	Canceled           uint64 `json:"canceled"`
	TrialsSimulated    uint64 `json:"trials_simulated"`
	PlanCompiles       uint64 `json:"plan_compiles"`
	PlanCacheHits      uint64 `json:"plan_cache_hits"`
}

func deltaStats(before, after service.Stats) statsDelta {
	return statsDelta{
		Requests:           after.Requests - before.Requests,
		EstimateRequests:   after.EstimateRequests - before.EstimateRequests,
		SweepRequests:      after.SweepRequests - before.SweepRequests,
		SweepCells:         after.SweepCells - before.SweepCells,
		SweepCellCacheHits: after.SweepCellCacheHits - before.SweepCellCacheHits,
		BadRequests:        after.BadRequests - before.BadRequests,
		CacheHits:          after.CacheHits - before.CacheHits,
		Coalesced:          after.Coalesced - before.Coalesced,
		CoalescedErrors:    after.CoalescedErrors - before.CoalescedErrors,
		Executions:         after.Executions - before.Executions,
		Refines:            after.Refines - before.Refines,
		Rejected:           after.Rejected - before.Rejected,
		Canceled:           after.Canceled - before.Canceled,
		TrialsSimulated:    after.TrialsSimulated - before.TrialsSimulated,
		PlanCompiles:       after.PlanCompiles - before.PlanCompiles,
		PlanCacheHits:      after.PlanCacheHits - before.PlanCacheHits,
	}
}

// cmdBench runs the open-loop load harness against a faultcastd, prints
// the per-class report, optionally writes BENCH_service.json, and — with
// -slo — gates on explicit latency/rate objectives, returning an error
// (non-zero exit) on any violation. Same seed, same server options ⇒ the
// same request sequence, so two runs differ only by what the server did.
func cmdBench(c *client, args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	rate := fs.Float64("rate", 50, "offered arrival rate, requests/second")
	arrival := fs.String("arrival", "constant", "arrival process: constant | poisson")
	duration := fs.Duration("duration", 10*time.Second, "measured window")
	warmup := fs.Duration("warmup", 2*time.Second, "warmup window before measurement (issued, not recorded)")
	seed := fs.Uint64("seed", 1, "schedule seed (same seed = same request sequence)")
	sweepFrac := fs.Float64("sweep-fraction", 0.05, "fraction of arrivals that are sweeps")
	hotFrac := fs.Float64("hot", 0.8, "fraction of requests reusing their scenario's hot key")
	keys := fs.Int("keys", 256, "cold-key universe size per scenario")
	trials := fs.Int("trials", 1000, "per-request trial budget (0 = server default)")
	halfWidth := fs.Float64("half-width", 0.05, "precision target carried by half-width requests")
	hwFrac := fs.Float64("half-width-fraction", 0.25, "fraction of estimates stating the half-width target instead of only the budget")
	maxInflight := fs.Int("max-inflight", 512, "client-side cap on concurrent requests; arrivals beyond it are dropped and counted")
	scenarios := fs.String("scenarios", "", "workload scenarios as graph@p[*weight], comma-separated, e.g. grid:6x6@0.5*3,line:32@0.3 (empty = built-in mix)")
	slo := fs.String("slo", "", "comma-separated objectives, e.g. p95=250ms,reject_rate=0.05,estimate-hot.p50=20ms; violation = non-zero exit")
	out := fs.String("out", "", "write BENCH_service.json here")
	fs.Parse(args)

	spec := load.Spec{
		Rate: *rate, Arrival: *arrival,
		Duration: *duration, Warmup: *warmup,
		Seed: *seed, SweepFraction: *sweepFrac, HotFraction: *hotFrac,
		KeyUniverse: *keys, Trials: *trials,
		HalfWidth: *halfWidth, HalfWidthFraction: *hwFrac,
		MaxInflight: *maxInflight,
	}
	if *scenarios != "" {
		parsed, err := parseScenarios(*scenarios)
		if err != nil {
			return err
		}
		spec.Scenarios = parsed
	}
	objectives, err := parseSLOs(*slo)
	if err != nil {
		return err
	}

	if _, err := c.get("/healthz"); err != nil {
		return fmt.Errorf("bench: server not healthy: %w", err)
	}
	var info service.ScenarioInfo
	if body, err := c.get("/v1/scenarios"); err != nil {
		return err
	} else if err := json.Unmarshal(body, &info); err != nil {
		return err
	}

	// The before-snapshot is taken at the warmup/measurement boundary, so
	// the deltas cover exactly the measured window (in-flight warmup
	// stragglers excepted).
	var before service.Stats
	var beforeErr error
	snapshot := func() (service.Stats, error) {
		var st service.Stats
		body, err := c.get("/v1/stats")
		if err != nil {
			return st, err
		}
		return st, json.Unmarshal(body, &st)
	}
	// The /metrics scrape rides the same window boundaries; a server
	// without the endpoint (or a failed scrape) just omits metrics_delta
	// rather than failing the bench.
	var beforeMetrics *telemetry.Metrics
	scrapeMetrics := func() *telemetry.Metrics {
		body, err := c.get("/metrics")
		if err != nil {
			return nil
		}
		m, err := telemetry.ParseText(bytes.NewReader(body))
		if err != nil {
			return nil
		}
		return m
	}
	fmt.Printf("bench: %s arrivals at %g req/s for %v (warmup %v), seed %d\n",
		spec.Arrival, spec.Rate, *duration, *warmup, spec.Seed)
	rep, err := load.Run(context.Background(), c.base, spec, load.Options{
		Client:       c.http,
		OnWarmupDone: func() { before, beforeErr = snapshot(); beforeMetrics = scrapeMetrics() },
	})
	if err != nil {
		return err
	}
	if beforeErr != nil {
		return fmt.Errorf("bench: stats snapshot at warmup end: %w", beforeErr)
	}
	after, err := snapshot()
	if err != nil {
		return fmt.Errorf("bench: stats snapshot at run end: %w", err)
	}
	delta := deltaStats(before, after)
	var metricsDelta map[string]float64
	if afterMetrics := scrapeMetrics(); beforeMetrics != nil && afterMetrics != nil {
		metricsDelta = telemetry.Delta(beforeMetrics, afterMetrics)
	}

	printBenchReport(rep, delta, after.Latency)

	violations := checkSLOs(objectives, rep)
	file := benchFile{
		Schema:        "faultcast-service-bench/v1",
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		MaxProcs:      runtime.GOMAXPROCS(0),
		CPU:           load.CPUModel(),
		Server:        info.Limits,
		Workload:      spec.Normalized(),
		Client:        rep,
		StatsDelta:    delta,
		ServerLatency: after.Latency,
		MetricsDelta:  metricsDelta,
		SLO:           objectives,
		SLOOk:         len(violations) == 0,
		Violations:    violations,
	}
	if *out != "" {
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("bench: wrote %s\n", *out)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "bench: SLO violation: %s\n", v)
		}
		return fmt.Errorf("bench: %d SLO violation(s)", len(violations))
	}
	if len(objectives) > 0 {
		fmt.Println("bench: all SLOs met")
	}
	return nil
}

func printBenchReport(rep *load.Report, delta statsDelta, serverLat map[string]hist.Summary) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "CLASS\tCOUNT\tOK\t429\tERR\tDROP\tP50\tP90\tP95\tP99\tMAX")
	for _, cl := range rep.Classes {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%.1fms\t%.1fms\t%.1fms\t%.1fms\t%.1fms\n",
			cl.Class, cl.Count, cl.OK, cl.Rejected, cl.Errors, cl.Dropped,
			cl.Latency.P50Ms, cl.Latency.P90Ms, cl.Latency.P95Ms, cl.Latency.P99Ms, cl.Latency.MaxMs)
	}
	tw.Flush()
	fmt.Printf("throughput: offered %.1f req/s, achieved %.1f req/s over %.1fs; reject rate %.4f, error rate %.4f\n",
		rep.OfferedRate, rep.AchievedRate, rep.ElapsedS, rep.RejectRate, rep.ErrorRate)
	fmt.Printf("server window: executions=%d cache_hits=%d coalesced=%d (+%d error-shared) refines=%d rejected=%d canceled=%d trials=%d compiles=%d\n",
		delta.Executions, delta.CacheHits, delta.Coalesced, delta.CoalescedErrors,
		delta.Refines, delta.Rejected, delta.Canceled, delta.TrialsSimulated, delta.PlanCompiles)
	if est, ok := serverLat["estimate"]; ok && est.Count > 0 {
		fmt.Printf("server-observed estimate latency (cumulative): p50 %.1fms p95 %.1fms p99 %.1fms over %d requests\n",
			est.P50Ms, est.P95Ms, est.P99Ms, est.Count)
	}
}

// parseScenarios parses graph@p[*weight] entries: graph specs keep their
// own colons (grid:6x6), @ introduces the failure probability, and an
// optional *weight scales the draw.
func parseScenarios(s string) ([]load.Scenario, error) {
	var out []load.Scenario
	for _, entry := range splitList(s) {
		graph, rest, ok := strings.Cut(entry, "@")
		if !ok || graph == "" {
			return nil, fmt.Errorf("bench: scenario %q is not graph@p[*weight]", entry)
		}
		pStr, wStr, hasW := strings.Cut(rest, "*")
		p, err := strconv.ParseFloat(pStr, 64)
		if err != nil {
			return nil, fmt.Errorf("bench: scenario %q: bad p %q", entry, pStr)
		}
		weight := 1.0
		if hasW {
			if weight, err = strconv.ParseFloat(wStr, 64); err != nil || weight <= 0 {
				return nil, fmt.Errorf("bench: scenario %q: bad weight %q", entry, wStr)
			}
		}
		out = append(out, load.Scenario{Graph: graph, P: p, Weight: weight})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: empty -scenarios")
	}
	return out, nil
}

// parseSLOs parses the -slo string into metric → threshold (kept as the
// user wrote them, for the report). Metrics: p50/p90/p95/p99/max/mean as
// durations — bare, applying to every class with successes, or prefixed
// class.p95 for one class — and reject_rate/error_rate/drop_rate as
// fractions of completed (resp. scheduled) requests.
func parseSLOs(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]string{}
	for _, pair := range splitList(s) {
		key, val, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("bench: SLO %q is not metric=threshold", pair)
		}
		metric := key
		if _, m, ok := strings.Cut(key, "."); ok {
			metric = m
		}
		switch metric {
		case "p50", "p90", "p95", "p99", "max", "mean":
			if _, err := time.ParseDuration(val); err != nil {
				return nil, fmt.Errorf("bench: SLO %q: %q is not a duration", pair, val)
			}
		case "reject_rate", "error_rate", "drop_rate":
			if strings.Contains(key, ".") {
				return nil, fmt.Errorf("bench: SLO %q: rate objectives are global, not per class", pair)
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("bench: SLO %q: %q is not a rate in [0, 1]", pair, val)
			}
		default:
			return nil, fmt.Errorf("bench: SLO %q: unknown metric %q", pair, metric)
		}
		out[key] = val
	}
	return out, nil
}

// checkSLOs evaluates the parsed objectives against the report and
// returns human-readable violations (empty = all met).
func checkSLOs(objectives map[string]string, rep *load.Report) []string {
	if len(objectives) == 0 {
		return nil
	}
	quantile := func(sum hist.Summary, metric string) float64 {
		switch metric {
		case "p50":
			return sum.P50Ms
		case "p90":
			return sum.P90Ms
		case "p95":
			return sum.P95Ms
		case "p99":
			return sum.P99Ms
		case "mean":
			return sum.MeanMs
		default:
			return sum.MaxMs
		}
	}
	var violations []string
	keys := make([]string, 0, len(objectives))
	for k := range objectives {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		val := objectives[key]
		class, metric, scoped := strings.Cut(key, ".")
		if !scoped {
			metric = key
		}
		switch metric {
		case "reject_rate", "error_rate", "drop_rate":
			limit, _ := strconv.ParseFloat(val, 64)
			got := rep.RejectRate
			switch metric {
			case "error_rate":
				got = rep.ErrorRate
			case "drop_rate":
				got = 0
				if rep.Scheduled > 0 {
					got = float64(rep.Dropped) / float64(rep.Scheduled)
				}
			}
			if got > limit {
				violations = append(violations, fmt.Sprintf("%s %.4f > %v", metric, got, val))
			}
		default:
			limit, _ := time.ParseDuration(val)
			limitMs := float64(limit) / float64(time.Millisecond)
			for _, cl := range rep.Classes {
				if scoped && cl.Class != class {
					continue
				}
				if cl.OK == 0 {
					continue
				}
				if got := quantile(cl.Latency, metric); got > limitMs {
					violations = append(violations, fmt.Sprintf("%s.%s %.1fms > %v", cl.Class, metric, got, val))
				}
			}
		}
	}
	return violations
}

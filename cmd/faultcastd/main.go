// Command faultcastd is the faultcast estimation service: a long-running
// HTTP daemon that answers success-probability queries over compiled
// plans, amortizing compilation and simulation across callers with plan
// and result caches, request coalescing, confidence-aware estimate reuse,
// and bounded admission (429 + Retry-After under overload).
//
// Endpoints: POST /v1/estimate, POST /v1/sweep, POST /v1/shard,
// GET /v1/scenarios, GET /v1/stats, GET /v1/trace, GET /v1/trace/{id},
// GET /metrics, GET /healthz. /v1/stats exposes the full serving ledger —
// cache/coalescing/admission counters plus per-endpoint latency
// histograms — with semantics documented on internal/service.Stats;
// /metrics re-expresses the same counters in Prometheus text format under
// the stable names in DESIGN.md's metric ledger. Every response carries a
// trace_id; GET /v1/trace/{id} (or faultcastctl trace ID) returns that
// request's span tree — admission wait, plan lookup/compile, execution
// batches, store replay, and per-shard worker timings in coordinator
// mode. With -debug-addr a second loopback listener serves
// net/http/pprof. See cmd/faultcastctl for a client, including the
// open-loop load bench (faultcastctl bench) that exercises a daemon and
// gates its latency/reject SLOs in CI.
//
// Every faultcastd is also a cluster worker: POST /v1/shard executes one
// shard of a remote coordinator's trial stream against the local plan
// cache. With -workers, the daemon additionally becomes a coordinator:
// estimates and sweeps are split into fixed-size shards and fanned out
// across the listed workers, with per-worker health tracking, retry, and
// transparent failover to local execution — and results bit-identical to
// a single-node run. On SIGTERM the daemon drains gracefully: new shard
// work is refused with 503 while in-flight work finishes, then the
// listener closes.
//
// With -store=DIR the daemon additionally keeps a durable tally store:
// every estimate and sweep cell resumes from the store's persisted trial
// prefix and appends its marginal batches back, so a restarted daemon
// answers previously-served requests with zero trials, bit-identical
// (warm restart), and refinements only ever simulate what is not on disk.
// The latency histograms in /v1/stats are snapshotted to DIR/stats.json
// on drain and restored at startup. Inspect the store offline with
// faultcastctl store ls|verify|gc -dir DIR.
//
// Example (one coordinator, two workers):
//
//	faultcastd -addr 127.0.0.1:8351 &
//	faultcastd -addr 127.0.0.1:8352 &
//	faultcastd -addr 127.0.0.1:8347 -workers http://127.0.0.1:8351,http://127.0.0.1:8352 &
//	faultcastctl -addr http://127.0.0.1:8347 estimate -graph grid:8x8 -p 0.5 -trials 5000
//	faultcastctl -addr http://127.0.0.1:8347 workers
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"faultcast/internal/cluster"
	"faultcast/internal/service"
	"faultcast/internal/store"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8347", "listen address")
		maxInflight   = flag.Int("max-inflight", 0, "concurrently executing estimations (0 = GOMAXPROCS)")
		maxQueue      = flag.Int("max-queue", 0, "requests waiting for a slot before 429 (0 = 64, negative = no queue)")
		workers       = flag.Int("workers-per-run", 0, "worker goroutines per estimation (0 = GOMAXPROCS)")
		planCache     = flag.Int("plan-cache", 0, "compiled plans kept in the LRU (0 = 256)")
		resultCache   = flag.Int("result-cache", 0, "estimates kept in the result cache (0 = 4096)")
		resultTTL     = flag.Duration("result-ttl", 0, "lifetime of a cached estimate (0 = 5m)")
		maxNodes      = flag.Int("max-nodes", 0, "largest served graph (0 = 4096 vertices)")
		maxTrials     = flag.Int("max-trials", 0, "per-request trial cap (0 = 200000)")
		defaultTrials = flag.Int("default-trials", 0, "trial budget when a request names none (0 = 1000)")
		workerURLs    = flag.String("workers", "", "comma-separated worker base URLs; enables coordinator mode")
		shardTrials   = flag.Int("shard-trials", 0, "trials per dispatched shard in coordinator mode (0 = 512)")
		storeDir      = flag.String("store", "", "durable tally store directory; enables warm restart (empty = in-memory caches only)")
		traceRing     = flag.Int("trace-ring", 0, "finished request traces retained for /v1/trace (0 = 256, negative disables tracing)")
		traceSlowest  = flag.Int("trace-slowest", 0, "slowest traces retained beyond ring eviction (0 = 16)")
		debugAddr     = flag.String("debug-addr", "", "optional second listener for net/http/pprof profiling (e.g. 127.0.0.1:8348); empty disables")
	)
	flag.Parse()

	opts := service.Options{
		MaxNodes:        *maxNodes,
		MaxTrials:       *maxTrials,
		DefaultTrials:   *defaultTrials,
		PlanCacheSize:   *planCache,
		ResultCacheSize: *resultCache,
		ResultTTL:       *resultTTL,
		MaxInflight:     *maxInflight,
		MaxQueue:        *maxQueue,
		Workers:         *workers,
		TraceRing:       *traceRing,
		TraceSlowest:    *traceSlowest,
	}
	if *workerURLs != "" {
		urls := strings.Split(*workerURLs, ",")
		for _, u := range urls {
			// -workers used to be the goroutines-per-estimation count
			// (now -workers-per-run); fail loudly on anything that isn't a
			// worker base URL rather than dispatch shards into the void.
			if u = strings.TrimSpace(u); !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
				log.Fatalf("faultcastd: -workers takes worker base URLs (got %q); for per-estimation goroutines use -workers-per-run", u)
			}
		}
		opts.Cluster = cluster.New(urls, cluster.Options{
			ShardTrials: *shardTrials,
			// Failover shards respect the same per-run goroutine bound as
			// everything else on this process.
			LocalWorkers: *workers,
		})
		log.Printf("faultcastd: coordinator mode over %d workers: %s", len(urls), *workerURLs)
	}
	var statsPath string
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			log.Fatalf("faultcastd: %v", err)
		}
		opts.Store = st
		statsPath = filepath.Join(*storeDir, "stats.json")
		log.Printf("faultcastd: durable tally store at %s", *storeDir)
	}
	srv := service.New(opts)
	if statsPath != "" {
		// Warm restart: carry the latency ledger across the restart so a
		// bench window spanning it keeps its "before" deltas.
		if err := srv.LoadStatsSnapshot(statsPath); err != nil {
			log.Printf("faultcastd: stats snapshot not restored: %v", err)
		}
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	if *debugAddr != "" {
		// Profiling listens on its OWN address, never the serving one:
		// pprof endpoints expose process internals and must be bindable to
		// loopback while the API faces the network. The DefaultServeMux
		// carries net/http/pprof's registrations (the blank import above).
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           http.DefaultServeMux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("faultcastd: pprof debug listener on http://%s/debug/pprof/", *debugAddr)
			if err := dbg.ListenAndServe(); err != http.ErrServerClosed {
				log.Printf("faultcastd: debug listener: %v", err)
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		// Drain before Shutdown: new shard work is refused with 503 (so
		// coordinators re-route immediately instead of losing shards to a
		// closed listener), then Shutdown waits for everything in flight —
		// shards included — before closing the listener.
		srv.BeginDrain()
		log.Print("faultcastd: draining, then shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("faultcastd: shutdown: %v", err)
		}
		if statsPath != "" {
			// After Shutdown: every in-flight request has finished, so
			// the saved histograms include everything this process served.
			if err := srv.SaveStatsSnapshot(statsPath); err != nil {
				log.Printf("faultcastd: stats snapshot not saved: %v", err)
			}
		}
	}()

	log.Printf("faultcastd: listening on %s", *addr)
	if err := hs.ListenAndServe(); err != http.ErrServerClosed {
		log.Fatalf("faultcastd: %v", err)
	}
	<-done
}

// Command faultcastd is the faultcast estimation service: a long-running
// HTTP daemon that answers success-probability queries over compiled
// plans, amortizing compilation and simulation across callers with plan
// and result caches, request coalescing, confidence-aware estimate reuse,
// and bounded admission (429 + Retry-After under overload).
//
// Endpoints: POST /v1/estimate, GET /v1/scenarios, GET /v1/stats,
// GET /healthz. See internal/service for semantics and cmd/faultcastctl
// for a client.
//
// Example:
//
//	faultcastd -addr 127.0.0.1:8347 &
//	faultcastctl -addr http://127.0.0.1:8347 estimate -graph grid:8x8 -p 0.5 -trials 5000
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"faultcast/internal/service"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8347", "listen address")
		maxInflight   = flag.Int("max-inflight", 0, "concurrently executing estimations (0 = GOMAXPROCS)")
		maxQueue      = flag.Int("max-queue", 0, "requests waiting for a slot before 429 (0 = 64, negative = no queue)")
		workers       = flag.Int("workers", 0, "worker goroutines per estimation (0 = GOMAXPROCS)")
		planCache     = flag.Int("plan-cache", 0, "compiled plans kept in the LRU (0 = 256)")
		resultCache   = flag.Int("result-cache", 0, "estimates kept in the result cache (0 = 4096)")
		resultTTL     = flag.Duration("result-ttl", 0, "lifetime of a cached estimate (0 = 5m)")
		maxNodes      = flag.Int("max-nodes", 0, "largest served graph (0 = 4096 vertices)")
		maxTrials     = flag.Int("max-trials", 0, "per-request trial cap (0 = 200000)")
		defaultTrials = flag.Int("default-trials", 0, "trial budget when a request names none (0 = 1000)")
	)
	flag.Parse()

	srv := service.New(service.Options{
		MaxNodes:        *maxNodes,
		MaxTrials:       *maxTrials,
		DefaultTrials:   *defaultTrials,
		PlanCacheSize:   *planCache,
		ResultCacheSize: *resultCache,
		ResultTTL:       *resultTTL,
		MaxInflight:     *maxInflight,
		MaxQueue:        *maxQueue,
		Workers:         *workers,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("faultcastd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("faultcastd: shutdown: %v", err)
		}
	}()

	log.Printf("faultcastd: listening on %s", *addr)
	if err := hs.ListenAndServe(); err != http.ErrServerClosed {
		log.Fatalf("faultcastd: %v", err)
	}
	<-done
}

// Command benchjson runs the engine benchmarks through `go test -bench`
// and records the results as a machine-readable JSON file (by default
// BENCH_engine.json), so the performance trajectory of the simulator is
// captured per commit instead of scrolling away in CI logs. CI runs it
// after the test job and uploads the file as a build artifact.
//
// Usage:
//
//	go run ./cmd/benchjson [-bench REGEXP] [-pkg PATTERN] [-benchtime D]
//	                       [-count N] [-out FILE]
//
// The default benchmark selection covers the engine-level workloads: the
// compile-once estimator on the Composed and RadioRepeat scenarios (with
// their scalar-core, bitset-core and lane-core twins) and the raw engine
// pairs. A second invocation
// with -bench '^BenchmarkSweepFeasibilityGrid' -out BENCH_sweep.json
// records the sweep scheduler pair (per-cell loop vs shared pool); that
// delta scales with core count, so read it next to the file's maxprocs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's aggregated measurement. When -count > 1 the
// minimum ns/op across samples is kept (the least-noise estimate on a
// shared machine); B/op and allocs/op are effectively deterministic.
type Result struct {
	Workload    string  `json:"workload"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

// File is the BENCH_engine.json schema. MaxProcs and CPU identify the
// builder: ns/op from a 1-core CI runner and a 16-core workstation are
// not comparable, and the lane-core speedups in particular divide across
// however many workers the estimator was allowed.
type File struct {
	Schema    string   `json:"schema"`
	GoVersion string   `json:"go"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	MaxProcs  int      `json:"maxprocs"`
	CPU       string   `json:"cpu,omitempty"`
	Bench     string   `json:"bench"`
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

// cpuModel reads the processor model from /proc/cpuinfo. Best effort:
// on platforms without it (or with an unexpected layout) the header just
// omits the field rather than failing the run.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	bench := flag.String("bench", `^Benchmark(EstimatePlan(Composed|RadioRepeat)(ScalarCore|Lanes|LanesTraced|BitsetCore)?|EstimateLanes(Noise|Equivocator|Timing)(BitsetCore)?|Engine.*)$`,
		"benchmark selection regexp, passed to go test -bench")
	pkg := flag.String("pkg", ".", "package pattern to benchmark")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	count := flag.Int("count", 1, "go test -count value (min ns/op is kept)")
	out := flag.String("out", "BENCH_engine.json", "output file")
	flag.Parse()

	args := []string{"test", *pkg, "-run", "^$",
		"-bench", *bench, "-benchmem",
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count)}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n%s", strings.Join(args, " "), err, outBytes)
		os.Exit(1)
	}

	byName := map[string]*Result{}
	for _, line := range strings.Split(string(outBytes), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		var bop, aop int64
		if m[3] != "" {
			bop, _ = strconv.ParseInt(m[3], 10, 64)
		}
		if m[4] != "" {
			aop, _ = strconv.ParseInt(m[4], 10, 64)
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		r, ok := byName[name]
		if !ok {
			byName[name] = &Result{Workload: name, NsPerOp: ns, BPerOp: bop, AllocsPerOp: aop, Samples: 1}
			continue
		}
		r.Samples++
		if ns < r.NsPerOp {
			r.NsPerOp = ns
		}
		if bop < r.BPerOp {
			r.BPerOp = bop
		}
		if aop < r.AllocsPerOp {
			r.AllocsPerOp = aop
		}
	}
	if len(byName) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines matched %q in go test output:\n%s", *bench, outBytes)
		os.Exit(1)
	}

	file := File{
		Schema:    "faultcast-bench/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		MaxProcs:  runtime.GOMAXPROCS(0),
		CPU:       cpuModel(),
		Bench:     *bench,
		Benchtime: *benchtime,
	}
	for _, r := range byName {
		file.Results = append(file.Results, *r)
	}
	sort.Slice(file.Results, func(i, j int) bool { return file.Results[i].Workload < file.Results[j].Workload })

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d results to %s\n", len(file.Results), *out)
}

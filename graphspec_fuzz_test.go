package faultcast

import (
	"strings"
	"testing"
)

// FuzzParseGraphSpec enforces the parse-don't-panic contract of the graph
// spec grammar: for any input, ParseGraph either returns a descriptive
// error or a structurally valid graph — never a panic, never an
// unbounded allocation (the size caps), and always the same answer for
// the same (spec, seed). The seed corpus covers every documented spec
// form plus the historic panic inputs this fuzz target found (undersized
// rings and tori, oversized dense families, dimension products that
// overflow int, NaN probabilities).
func FuzzParseGraphSpec(f *testing.F) {
	for _, spec := range []string{
		// Every documented form, including aliases.
		"line:10", "path:5", "ring:6", "cycle:4", "star:7",
		"complete:5", "clique:4", "k2", "twonode",
		"tree:15", "tree:13:3", "grid:3x4", "torus:3x3",
		"hypercube:4", "cube:3", "layered:3", "caterpillar:4:2",
		"gnp:20:0.1", "randtree:9", "file:/nonexistent",
		" LINE:10 ", // trimming + case folding
		// Rejections and historic panic/overflow inputs.
		"", "wat:3", "line", "line:0", "grid:3x", "gnp:10:2",
		"ring:1", "ring:2", "torus:1x5", "torus:2x2",
		"grid:4000000000x4000000000", "caterpillar:99999:99999",
		"hypercube:30", "layered:24", "complete:100000",
		"gnp:5:nan", "gnp:5:+Inf", "tree:5:0", "grid:0x0",
	} {
		f.Add(spec, uint64(7))
	}
	f.Fuzz(func(t *testing.T, spec string, seed uint64) {
		if strings.HasPrefix(strings.TrimSpace(spec), "file:") {
			// The file form reads the filesystem; fuzzing it would make
			// accept/reject depend on the host, not the spec.
			t.Skip()
		}
		g, err := ParseGraph(spec, seed)
		if err != nil {
			if g != nil {
				t.Fatalf("ParseGraph(%q) returned both a graph and an error: %v", spec, err)
			}
			return
		}
		if g == nil {
			t.Fatalf("ParseGraph(%q) returned neither graph nor error", spec)
		}
		if g.N() < 1 || g.N() > 1<<16 {
			t.Fatalf("ParseGraph(%q): %d vertices escapes the documented cap", spec, g.N())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("ParseGraph(%q) accepted an invalid graph: %v", spec, err)
		}
		// Accepting must be deterministic in (spec, seed): same vertex and
		// edge counts, same name, on a repeat parse.
		h, err := ParseGraph(spec, seed)
		if err != nil {
			t.Fatalf("ParseGraph(%q) accepted once, rejected twice: %v", spec, err)
		}
		if g.N() != h.N() || g.M() != h.M() || g.Name() != h.Name() {
			t.Fatalf("ParseGraph(%q) not deterministic: %v vs %v", spec, g, h)
		}
	})
}

package faultcast_test

import (
	"fmt"

	"faultcast"
)

// The feasibility dichotomy of the paper, queryable directly.
func ExampleFeasible() {
	// Omission failures are survivable at any p < 1 (Theorem 2.1).
	fmt.Println(faultcast.Feasible(faultcast.MessagePassing, faultcast.Omission, 0.99, 4))
	// Malicious message passing caps at 1/2 (Theorems 2.2/2.3).
	fmt.Println(faultcast.Feasible(faultcast.MessagePassing, faultcast.Malicious, 0.49, 4))
	fmt.Println(faultcast.Feasible(faultcast.MessagePassing, faultcast.Malicious, 0.50, 4))
	// Output:
	// true
	// true
	// false
}

// The radio threshold p = (1-p)^(Δ+1) of Theorem 2.4.
func ExampleRadioThreshold() {
	// Δ = 0 degenerates to p = 1-p.
	fmt.Printf("%.4f\n", faultcast.RadioThreshold(0))
	// Δ = 1: p = (1-p)², the golden-ratio-flavored root.
	fmt.Printf("%.4f\n", faultcast.RadioThreshold(1))
	// Output:
	// 0.5000
	// 0.3820
}

// One reproducible broadcast simulation.
func ExampleRun() {
	res, err := faultcast.Run(faultcast.Config{
		Graph:   faultcast.Line(8),
		Source:  0,
		Message: []byte("msg"),
		Model:   faultcast.MessagePassing,
		Fault:   faultcast.Omission,
		P:       0, // fault-free: flooding finishes in exactly D rounds of work
		Seed:    1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Success)
	// Output:
	// true
}

// Graph construction from CLI-style specs.
func ExampleParseGraph() {
	g, err := faultcast.ParseGraph("layered:3", 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(g.N(), g.MaxDegree())
	// Output:
	// 11 5
}

// Package faultcast is a simulation library for fault-tolerant
// broadcasting with random transmission failures, reproducing the system
// of Pelc & Peleg, "Feasibility and complexity of broadcasting with random
// transmission failures" (PODC 2005 / TCS 370 (2007) 279–292).
//
// The model: a synchronous n-node network (message passing or radio) in
// which, at every step, each node's transmitter fails independently with
// constant probability p. Failures are node-omission (a faulty transmitter
// is silent) or malicious (an adaptive adversary drives the faulty
// transmitter). A broadcasting algorithm is almost-safe when it delivers
// the source message to every node with probability at least 1 − 1/n.
//
// The package exposes:
//
//   - feasibility predicates for the paper's four scenarios (Feasible,
//     Threshold, RadioThreshold);
//   - the paper's algorithms, runnable on arbitrary graphs (Simple-Omission,
//     Simple-Malicious, tree flooding, the composed Kučera-style algorithm,
//     the Theorem 3.4 radio algorithms, and the two-node timing protocol);
//   - a compile-once/run-many execution model: Compile lowers a Config to a
//     Plan exactly once (protocol construction, composition plans, radio
//     schedules, spanning trees), and Plan.Run / Plan.Estimate stream any
//     number of trials against it, with optional early-stopped estimation;
//     Run and EstimateSuccess are one-shot wrappers over the same path;
//   - resumable estimation: Plan.EstimateFrom tops an existing Estimate up
//     to a larger budget or tighter band by continuing its seed sequence —
//     the refinement primitive of the faultcastd serving layer;
//   - declarative parameter sweeps: a SweepSpec names axes (graphs, p,
//     model, fault, adversary, algorithm, message, window constant) and a
//     per-cell budget; CompileSweep expands the cross product into keyed
//     cells that share compiled plans, and SweepPlan.Run streams every
//     cell's estimate from one shared worker pool — early-stopped cells
//     hand their workers to undecided ones, and cached results feed back
//     in via WithCellPrev for zero-trial or marginal-trial answers;
//   - adaptive threshold search: ThresholdSearch brackets a scenario's
//     empirical feasibility threshold by bisection on p with sequential
//     Wilson tests, for comparison against the closed-form Threshold;
//   - pluggable execution: WithDispatcher / WithSweepDispatcher swap the
//     in-process worker pool for any exec.Dispatcher — in particular the
//     cluster coordinator (internal/cluster), which fans trial shards out
//     across remote faultcastd workers with bit-identical results;
//     Plan.TallyShard is the worker-side shard primitive;
//   - canonical keying: Config.Fingerprint hashes the simulation semantics
//     (graph structure, scenario, seed — not graph names, engine selectors,
//     or tracing), so semantically identical configurations key equal in
//     caches; Plan.Key exposes the same key on a compiled plan;
//   - graph constructors for the families used in the paper's
//     constructions, including the layered radio lower-bound graph, and
//     ParseGraph for the compact textual specs used by the CLI and service.
//
// # Invariants
//
// Everything below is enforced by tests, not convention:
//
//   - A run is identified by (configuration, seed): all randomness derives
//     from the seed via split streams, and repeated runs are bit-identical
//     (TestPlanRunMatchesOneShot, the golden digest traces in
//     internal/sim/testdata/golden).
//   - The word-parallel bitset engine core, the scalar reference core, and
//     the goroutine-per-node engine produce bit-identical executions
//     (internal/sim's differential test matrix and the public-API face
//     TestPlanCoresAndEnginesEquivalent) — which is why Config.Concurrent
//     and Config.ScalarCore are excluded from Config.Fingerprint.
//   - Estimates are independent of the worker count, early stopping cuts
//     the seed sequence only at deterministic batch boundaries, and
//     EstimateFrom visits exactly the seed suffix a one-shot run of the
//     combined budget would (TestEstimateStreamStopsPrefix,
//     TestEstimateFromMatchesEstimate).
//   - A sweep cell's estimate equals plan.Estimate run cell-by-cell with
//     the same budget and the cell's derived seed, regardless of worker
//     count or co-scheduled cells (TestSweepMatchesPerCellEstimate), and
//     cell seeds derive from (sweep seed, cell identity) so editing a grid
//     never perturbs the streams of its unchanged cells.
//   - A distributed estimate or sweep through a cluster coordinator equals
//     the local single-process result bit for bit, including under worker
//     failure mid-run (internal/cluster's bit-identity tests over real
//     HTTP workers).
//
// Lower-level control (custom protocols, custom adversaries, round
// observers, the goroutine-per-node engine) is available in the internal
// packages; see DESIGN.md for the map and internal/service for the
// faultcastd HTTP serving layer built on top.
package faultcast

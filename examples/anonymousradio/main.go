// Anonymousradio: broadcasting without a global enumeration (§2.1).
//
// Algorithm Simple-Omission assumes every node knows its index in a
// global enumeration of the graph — a strong preprocessing assumption.
// The paper notes that in the radio model it suffices that nodes carry
// distinct labels: with a known label range [0, K), label i transmits
// only in steps ℓK + i (a TDMA cycle), and with an unknown range, in the
// prime-power steps p_i^k. Either way at most one node ever transmits
// per step, so the radio collision rule never fires and omission
// failures are the only obstacle — which windows of retries defeat for
// any p < 1.
//
// This example drives the internal protocol packages directly (the
// lower-level API beneath faultcast.Run), which is also how custom
// protocols plug into the simulator. Custom protocols cannot ride the
// public Plan/Sweep API (it names only the paper's algorithms), but they
// still get the same execution machinery: a reusable engine runner per
// worker and a cell on the internal/exec scheduler — exactly what
// Plan.Estimate and SweepPlan.Run lower to.
package main

import (
	"fmt"
	"log"

	"faultcast/internal/exec"
	"faultcast/internal/graph"
	"faultcast/internal/protocols/anonymous"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

func main() {
	g := graph.Grid(4, 4)
	const p = 0.5

	for _, kind := range []anonymous.ScheduleKind{anonymous.ModuloK, anonymous.PrimePowers} {
		proto, err := anonymous.New(g, kind, g.N())
		if err != nil {
			log.Fatal(err)
		}
		a := 6.0
		pFault := p
		if kind == anonymous.PrimePowers {
			// Prime slots thin out geometrically: give the existence
			// construction a deeper horizon and a kinder fault rate.
			a, pFault = 60, 0.3
		}
		rounds := proto.Rounds(g.Radius(0), a)

		cfg := &sim.Config{
			Graph: g, Model: sim.Radio, Fault: sim.Omission, P: pFault,
			Source: 0, SourceMsg: []byte("M"),
			NewNode: proto.NewNode, Rounds: rounds,
		}
		est := exec.EstimateCell(0, exec.Cell{
			MaxTrials: 300, BaseSeed: 1,
			NewTrial: func() stat.Trial {
				// One reusable runner per worker: the scenario compiles
				// once, each trial pays simulation cost only.
				r, err := sim.NewRunner(cfg)
				if err != nil {
					log.Fatal(err)
				}
				return func(seed uint64) bool {
					res, err := r.Run(seed)
					if err != nil {
						log.Fatal(err)
					}
					if res.Stats.Collisions != 0 {
						log.Fatalf("%v: collision observed — slot discipline broken", kind)
					}
					return res.Success
				}
			},
		})
		fmt.Printf("%-13v p=%.1f horizon=%-6d success=%v (0 collisions in all runs)\n",
			kind, pFault, rounds, est)
	}

	fmt.Println("\nBoth schedules are collision-free by construction: modulo-K pays a")
	fmt.Println("~K time factor for anonymity; prime powers additionally pay geometric")
	fmt.Println("slot spacing for not even knowing K (the paper's existence argument).")
}

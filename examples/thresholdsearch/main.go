// Thresholdsearch: locating the radio fixed point p* = (1−p)^(Δ+1)
// empirically.
//
// Theorem 2.4 pins the feasibility threshold for malicious failures in
// the radio model at the unique solution of p = (1−p)^(Δ+1). This
// example finds that threshold the hard way — by adaptive bisection on
// p, running Monte-Carlo probes with sequential Wilson tests on the star
// (the extremal topology) — and then compares the resulting empirical
// bracket against the closed form, the repository's ThresholdSearch API
// in miniature.
//
// Each probe is deterministic in the search seed, stops as soon as its
// interval is decided against the almost-safety bound, and classifies as
// safe (below the frontier), unsafe (above), or undecided (on it). The
// window constant is pinned to a "suitable constant" c = 60 because the
// auto-derived window grows without bound as probes approach the fixed
// point; a fixed window is sound on both sides (above p* no window
// works, and below it c = 60 is ample for this star).
package main

import (
	"fmt"
	"log"

	"faultcast"
)

func main() {
	// A star with 5 leaves: Δ = 5 at the hub, source at a leaf, so every
	// message must cross the hub — the Theorem 2.4 impossibility shape.
	g := faultcast.Star(6)
	delta := g.MaxDegree()
	fmt.Printf("star with Δ=%d: searching for the malicious-radio threshold\n\n", delta)

	res, err := faultcast.ThresholdSearch(faultcast.Config{
		Graph:     g,
		Source:    1,
		Message:   []byte("1"),
		Model:     faultcast.Radio,
		Fault:     faultcast.Malicious,
		Algorithm: faultcast.SimpleMalicious,
		Adversary: faultcast.WorstCase, // the paper's star adversary
		WindowC:   60,
		Seed:      7,
	},
		faultcast.WithThresholdTrials(500),
		faultcast.WithThresholdResolution(1.0/16),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-24s %-8s %s\n", "probe p", "success (95% CI)", "trials", "verdict")
	for _, p := range res.Probes {
		fmt.Printf("%-10.4f %-24s %-8d %v\n", p.P,
			fmt.Sprintf("%.4f [%.3f,%.3f]", p.Estimate.Rate, p.Estimate.Low, p.Estimate.Hi),
			p.Estimate.Trials, p.Verdict)
	}

	fmt.Printf("\nempirical bracket:   p* ∈ [%.4f, %.4f]\n", res.Low, res.High)
	fmt.Printf("Theorem 2.4 says:    p* = %.4f (RadioThreshold(%d))\n",
		faultcast.RadioThreshold(delta), delta)
	fmt.Printf("bracket contains it: %v\n", res.Contains(res.Theory))

	fmt.Println("\nBelow the bracket the majority windows wash corruption out; above it")
	fmt.Println("the star adversary equivocates and jams often enough that no window")
	fmt.Println("length recovers the message — the search walks the cliff blind and")
	fmt.Println("lands on the fixed point the theorem computes in closed form.")
}

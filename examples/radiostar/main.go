// Radiostar: the radio-model feasibility threshold in action.
//
// Theorem 2.4 says almost-safe broadcasting with malicious transmission
// failures in the radio model is feasible iff p < (1-p)^(Δ+1), where Δ is
// the maximum degree. This example sweeps p across that threshold on a
// star network — the topology for which the bound is tight — and prints
// the success-rate cliff.
package main

import (
	"fmt"
	"log"

	"faultcast"
)

func main() {
	// A star with 9 leaves: Δ = 9 at the hub. The source is a leaf, so
	// every message must cross the hub.
	g := faultcast.Star(10)
	delta := g.MaxDegree()
	pStar := faultcast.RadioThreshold(delta)
	fmt.Printf("star with Δ=%d: feasibility threshold p* = %.4f (solves p = (1-p)^%d)\n\n",
		delta, pStar, delta+1)

	fmt.Printf("%-10s %-10s %-22s %s\n", "p", "p/p*", "success rate", "almost-safe?")
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0, 1.5, 3.0} {
		p := pStar * frac
		if p >= 1 {
			continue
		}
		// WorstCase selects the paper's Theorem 2.4 star adversary: when
		// the source's transmitter fails it equivocates, and when other
		// transmitters fail while the source speaks, they jam (collide).
		// Compile per sweep point; all trials reuse the plan's schedule.
		plan, err := faultcast.Compile(faultcast.Config{
			Graph:     g,
			Source:    1, // a leaf
			Message:   []byte("1"),
			Model:     faultcast.Radio,
			Fault:     faultcast.Malicious,
			P:         p,
			Algorithm: faultcast.SimpleMalicious,
			Adversary: faultcast.WorstCase,
			WindowC:   24,
			Seed:      7,
		})
		if err != nil {
			log.Fatal(err)
		}
		est, err := plan.Estimate(300)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.4f %-10.2f %-22v %v\n", p, frac, est, est.AlmostSafe(g.N()))
	}

	fmt.Println("\nBelow p* the majority windows wash the corruption out; above it the")
	fmt.Println("adversary owns enough of each window (and can jam by speaking out of")
	fmt.Println("turn) that no running time recovers the message.")
}

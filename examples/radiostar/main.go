// Radiostar: the radio-model feasibility threshold in action.
//
// Theorem 2.4 says almost-safe broadcasting with malicious transmission
// failures in the radio model is feasible iff p < (1-p)^(Δ+1), where Δ is
// the maximum degree. This example sweeps p across that threshold on a
// star network — the topology for which the bound is tight — and prints
// the success-rate cliff.
package main

import (
	"context"
	"fmt"
	"log"

	"faultcast"
)

func main() {
	// A star with 9 leaves: Δ = 9 at the hub. The source is a leaf, so
	// every message must cross the hub.
	g := faultcast.Star(10)
	delta := g.MaxDegree()
	pStar := faultcast.RadioThreshold(delta)
	fmt.Printf("star with Δ=%d: feasibility threshold p* = %.4f (solves p = (1-p)^%d)\n\n",
		delta, pStar, delta+1)

	// The whole cliff is one declarative sweep: the p axis crosses the
	// threshold, every cell compiles once, and all cells run on one
	// shared worker pool. WorstCase selects the paper's Theorem 2.4 star
	// adversary: when the source's transmitter fails it equivocates, and
	// when other transmitters fail while the source speaks, they jam.
	var fracs, ps []float64
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0, 1.5, 3.0} {
		// Keep fracs aligned with the kept ps: rows index both below.
		if p := pStar * frac; p < 1 {
			fracs = append(fracs, frac)
			ps = append(ps, p)
		}
	}
	sp, err := faultcast.CompileSweep(faultcast.SweepSpec{
		Graphs:      []faultcast.SweepGraph{{Graph: g, Source: 1}}, // source at a leaf
		Models:      []faultcast.Model{faultcast.Radio},
		Faults:      []faultcast.Fault{faultcast.Malicious},
		Adversaries: []faultcast.AdversaryKind{faultcast.WorstCase},
		Algorithms:  []faultcast.Algorithm{faultcast.SimpleMalicious},
		WindowCs:    []float64{24},
		Ps:          ps,
		Seed:        7,
		Budget:      faultcast.CellBudget{Trials: 300},
	})
	if err != nil {
		log.Fatal(err)
	}
	results, err := sp.Collect(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %-10s %-36s %s\n", "p", "p/p*", "success rate", "almost-safe?")
	for i, r := range results {
		fmt.Printf("%-10.4f %-10.2f %-36v %v\n",
			r.Cell.Config.P, fracs[i], r.Estimate, r.Estimate.AlmostSafe(g.N()))
	}

	fmt.Println("\nBelow p* the majority windows wash the corruption out; above it the")
	fmt.Println("adversary owns enough of each window (and can jam by speaking out of")
	fmt.Println("turn) that no running time recovers the message.")
}

// Adversarial: the Theorem 2.3 dichotomy on one link.
//
// With malicious transmission failures in the message passing model, the
// threshold is exactly p = 1/2: below it, majority voting over a
// c·log n window delivers the message almost surely; at and above it, an
// equivocating adversary — which, whenever the sender's transmitter
// fails, substitutes the message the algorithm WOULD have sent for the
// opposite source bit — makes the receiver's observations carry zero
// information, pinning its error at 1/2 no matter how long the protocol
// runs.
package main

import (
	"fmt"
	"log"

	"faultcast"
)

func main() {
	g := faultcast.TwoNode()

	fmt.Println("Simple-Malicious on K2 against the equivocator (WorstCase adversary):")
	fmt.Printf("%-8s %-8s %s\n", "p", "window", "success rate")
	for _, p := range []float64{0.2, 0.35, 0.45, 0.5, 0.6, 0.75} {
		for _, c := range []float64{16, 64} {
			// One compiled plan per sweep cell; the 400 trials share it.
			plan, err := faultcast.Compile(faultcast.Config{
				Graph:     g,
				Source:    0,
				Message:   []byte("1"),
				Model:     faultcast.MessagePassing,
				Fault:     faultcast.Malicious,
				P:         p,
				Algorithm: faultcast.SimpleMalicious,
				Adversary: faultcast.WorstCase,
				WindowC:   c,
				Seed:      uint64(p*1000) + uint64(c),
			})
			if err != nil {
				log.Fatal(err)
			}
			est, err := plan.Estimate(400)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8.2f %-8.0f %v\n", p, c, est)
		}
	}
	fmt.Println("\nNote the cliff at p = 1/2 — and that quadrupling the window does")
	fmt.Println("nothing above it: the posterior is exactly uninformative (Thm 2.3).")

	// The escape hatch: if failures are LIMITED (can corrupt or drop, but
	// cannot make a silent transmitter speak), timing carries information
	// that content cannot. The "hello" protocol survives p = 0.8.
	fmt.Println("\nTiming protocol under limited malicious failures (any p < 1 works):")
	for _, bit := range []string{"0", "1"} {
		plan, err := faultcast.Compile(faultcast.Config{
			Graph:     g,
			Source:    0,
			Message:   []byte(bit),
			Model:     faultcast.MessagePassing,
			Fault:     faultcast.LimitedMalicious,
			P:         0.8,
			Algorithm: faultcast.TimingBit,
			Adversary: faultcast.CrashAdv,
			WindowC:   128, // m — the protocol runs 2m rounds
			Seed:      3,
		})
		if err != nil {
			log.Fatal(err)
		}
		est, err := plan.Estimate(400)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bit %s at p=0.80: %v\n", bit, est)
	}
}

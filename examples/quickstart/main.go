// Quickstart: broadcast a message over a faulty grid and check
// almost-safety — the one-screen tour of the faultcast API.
package main

import (
	"fmt"
	"log"

	"faultcast"
)

func main() {
	// An 8x8 grid; the source sits in a corner. At every step, every
	// node's transmitter fails independently with probability 1/2.
	g := faultcast.Grid(8, 8)
	const p = 0.5

	// Feasibility first: omission failures are survivable for ANY p < 1
	// (Theorem 2.1), so this must say "true".
	fmt.Printf("omission, message passing, p=%.1f feasible: %v\n",
		p, faultcast.Feasible(faultcast.MessagePassing, faultcast.Omission, p, g.MaxDegree()))

	// One run. Algorithm Auto selects the paper's optimal choice for the
	// scenario — BFS-tree flooding, Θ(D + log n) rounds (Theorem 3.1).
	res, err := faultcast.Run(faultcast.Config{
		Graph:   g,
		Source:  0,
		Message: []byte("meet at dawn"),
		Model:   faultcast.MessagePassing,
		Fault:   faultcast.Omission,
		P:       p,
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single run: success=%v in %d rounds (%d transmitter faults along the way)\n",
		res.Success, res.Rounds, res.Faults)

	// Monte-Carlo: is it ALMOST-SAFE, i.e. does it succeed with
	// probability at least 1 - 1/n?
	est, err := faultcast.EstimateSuccess(faultcast.Config{
		Graph:   g,
		Source:  0,
		Message: []byte("meet at dawn"),
		Model:   faultcast.MessagePassing,
		Fault:   faultcast.Omission,
		P:       p,
		Seed:    1,
	}, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("success rate over 500 runs: %v\n", est)
	fmt.Printf("almost-safe (target %.4f): %v\n", 1-1/float64(g.N()), est.AlmostSafe(g.N()))
}

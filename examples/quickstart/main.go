// Quickstart: broadcast a message over a faulty grid and check
// almost-safety — the one-screen tour of the faultcast API.
package main

import (
	"fmt"
	"log"

	"faultcast"
)

func main() {
	// An 8x8 grid; the source sits in a corner. At every step, every
	// node's transmitter fails independently with probability 1/2.
	g := faultcast.Grid(8, 8)
	const p = 0.5

	// Feasibility first: omission failures are survivable for ANY p < 1
	// (Theorem 2.1), so this must say "true".
	fmt.Printf("omission, message passing, p=%.1f feasible: %v\n",
		p, faultcast.Feasible(faultcast.MessagePassing, faultcast.Omission, p, g.MaxDegree()))

	// Compile once: algorithm selection (Auto picks the paper's optimal
	// choice — BFS-tree flooding, Θ(D + log n) rounds, Theorem 3.1),
	// spanning tree, and round horizon are paid here, never per trial.
	plan, err := faultcast.Compile(faultcast.Config{
		Graph:   g,
		Source:  0,
		Message: []byte("meet at dawn"),
		Model:   faultcast.MessagePassing,
		Fault:   faultcast.Omission,
		P:       p,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One trial per seed; same seed, same run, always.
	res, err := plan.Run(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single run: success=%v in %d rounds (%d transmitter faults along the way)\n",
		res.Success, res.Rounds, res.Faults)

	// Monte-Carlo on the same plan: is it ALMOST-SAFE, i.e. does it
	// succeed with probability at least 1 - 1/n?
	est, err := plan.Estimate(500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("success rate over %d runs: %v\n", est.Trials, est)
	fmt.Printf("almost-safe (target %.4f): %v\n", plan.AlmostSafeTarget(), est.AlmostSafe(g.N()))

	// Need a tighter interval later? Resume instead of restarting: the
	// top-up continues the same seed sequence, so this equals one big
	// 4000-trial estimate — for 3500 trials of marginal cost.
	tighter, err := plan.EstimateFrom(est, 4000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refined to %d trials: %v\n", tighter.Trials, tighter)
}

// Lowerbound: why the radio model can't have it all (Theorem 3.3).
//
// In the message passing model, almost-safe broadcast costs only an
// additive O(log n) over the fault-free optimum (Theorem 3.1). This
// example shows the radio model is different: on the layered graph G_m of
// Section 3, fault-free broadcast takes m+1 steps (Lemma 3.3), yet every
// schedule family needs far more than opt + O(log n) steps before each
// third-layer node is "hit" (hears exactly one transmitter) often enough
// to survive omission failures (Lemma 3.4).
package main

import (
	"fmt"
	"log"

	"faultcast"
	"faultcast/internal/lowerbound"
	"faultcast/internal/radio"
	"faultcast/internal/rng"
)

func main() {
	const p = 0.5
	for _, m := range []int{6, 8, 10} {
		g := faultcast.Layered(m)
		n := g.N()

		// Lemma 3.3: opt = m+1, verified by running the schedule.
		sched := radio.LayeredSchedule(m)
		ok, err := radio.Complete(g, 0, sched)
		if err != nil || !ok {
			log.Fatalf("m=%d: optimal schedule broken: ok=%v err=%v", m, ok, err)
		}
		need, _ := lowerbound.RequiredLength(m, p)
		budget := sched.Len() + need
		fmt.Printf("G_%d (n=%d): opt=%d, per-node hit requirement=%d, opt+need=%d\n",
			m, n, sched.Len(), need, budget)

		families := []struct {
			name string
			gen  func(steps int) *lowerbound.Schedule
		}{
			{"round-robin singles", func(k int) *lowerbound.Schedule {
				return lowerbound.RoundRobinSingles(m, k)
			}},
			{"random half-sets", func(k int) *lowerbound.Schedule {
				return lowerbound.RandomSets(m, k, m/2, rng.New(1))
			}},
			{"geometric sweep", func(k int) *lowerbound.Schedule {
				return lowerbound.GeometricSweep(m, k, rng.New(1))
			}},
		}
		for _, fam := range families {
			steps := lowerbound.StepsToCover(need, 1<<18, fam.gen)
			fmt.Printf("  %-22s needs %6d steps  (%.1fx the opt+log n budget)\n",
				fam.name, steps, float64(steps)/float64(budget))
		}

		// What happens if you ignore the bound and stop at opt + need?
		s := lowerbound.RoundRobinSingles(m, budget)
		fmt.Printf("  stopping at %d steps leaves %.1f nodes uninformed in expectation (target < %.4f)\n\n",
			budget, s.ExpectedUninformed(p), 1.0)
	}
	fmt.Println("Every family overshoots opt + O(log n) by a growing factor — the")
	fmt.Println("radio model's collision constraint makes hits a scarce resource")
	fmt.Println("(Lemma 3.4: Ω(log n · log log n / log log log n) is unavoidable).")
}

package faultcast

import (
	"errors"
	"fmt"

	"faultcast/internal/rng"
)

// ProbeVerdict classifies one threshold-search probe.
type ProbeVerdict int

const (
	// ProbeSafe: the probe's 95% Wilson interval sits entirely above the
	// almost-safety target — the scenario is feasible at this p.
	ProbeSafe ProbeVerdict = iota
	// ProbeUnsafe: the interval sits entirely below the target.
	ProbeUnsafe
	// ProbeUndecided: the interval straddles the target after the full
	// trial budget — the probe landed on the threshold frontier.
	ProbeUndecided
)

func (v ProbeVerdict) String() string {
	switch v {
	case ProbeSafe:
		return "safe"
	case ProbeUnsafe:
		return "unsafe"
	case ProbeUndecided:
		return "undecided"
	default:
		return fmt.Sprintf("ProbeVerdict(%d)", int(v))
	}
}

// ThresholdProbe records one bisection step of a ThresholdSearch.
type ThresholdProbe struct {
	P        float64
	Estimate Estimate
	Verdict  ProbeVerdict
}

// ThresholdResult is the outcome of a ThresholdSearch: an empirical
// bracket [Low, High] for the feasibility threshold p̂* of the scenario —
// the largest probed p classified feasible and the smallest classified
// infeasible — to hold against the paper's closed-form Threshold.
type ThresholdResult struct {
	// Low is the largest p whose probe was decided almost-safe (0 if none
	// was); High the smallest decided not-almost-safe (1 if none was).
	// Under correct classifications the scenario's true threshold lies in
	// [Low, High].
	Low, High float64
	// Theory is Threshold(model, fault, Δ) for the scenario — the value
	// the bracket is compared against.
	Theory float64
	// Probes is the bisection history in execution order.
	Probes []ThresholdProbe
	// Converged reports whether the search narrowed the bracket to the
	// requested resolution; false means it stopped on an undecided
	// frontier probe (or the probe budget).
	Converged bool
}

func (r *ThresholdResult) String() string {
	return fmt.Sprintf("p* ∈ [%.6f, %.6f] (theory %.6f, %d probes)",
		r.Low, r.High, r.Theory, len(r.Probes))
}

// Contains reports whether the empirical bracket contains p (inclusive).
func (r *ThresholdResult) Contains(p float64) bool {
	return r.Low <= p && p <= r.High
}

// thresholdOptions collects search tuning; see the option constructors.
type thresholdOptions struct {
	trials     int
	resolution float64
	maxProbes  int
	workers    int
}

// ThresholdOption tunes ThresholdSearch.
type ThresholdOption func(*thresholdOptions)

// WithThresholdTrials sets the per-probe trial budget (default 800).
func WithThresholdTrials(n int) ThresholdOption {
	return func(o *thresholdOptions) { o.trials = n }
}

// WithThresholdResolution sets the bracket width at which the search
// stops (default 1/32). Finer resolutions probe closer to the threshold,
// where derived windows — and thus per-trial cost — grow without bound
// for the malicious scenarios; widen the resolution before tightening
// the budget.
func WithThresholdResolution(w float64) ThresholdOption {
	return func(o *thresholdOptions) { o.resolution = w }
}

// WithThresholdMaxProbes caps the number of bisection steps (default 20).
func WithThresholdMaxProbes(n int) ThresholdOption {
	return func(o *thresholdOptions) { o.maxProbes = n }
}

// WithThresholdWorkers sets the worker count per probe (default
// GOMAXPROCS).
func WithThresholdWorkers(n int) ThresholdOption {
	return func(o *thresholdOptions) { o.workers = n }
}

// ThresholdSearch locates the empirical feasibility threshold of a
// scenario by adaptive bisection on the failure probability p, and
// returns a bracket to compare against the paper's closed-form
// Threshold(model, fault, Δ).
//
// cfg is the scenario template: graph, source, message, model, fault,
// algorithm, adversary, and window policy are taken from it; cfg.P is
// ignored (the search owns that axis) and cfg.Seed is the search's
// master seed, from which every probe derives its own trial-stream seed
// via rng.Derive — so a search is deterministic in (template, options)
// and probes never share streams.
//
// Each probe is a sequential Wilson test at the paper's almost-safety
// target 1 − 1/n: the probe's estimate stops as soon as a 99% interval
// is decided against the target (so far-from-threshold probes cost a
// few batches), and the probe is classified on the reported 95%
// interval — Safe moves the bracket's low edge up, Unsafe moves the
// high edge down, and Undecided means the probe sits on the frontier
// itself, at which point the search stops: narrowing further would
// split an interval the data cannot order.
func ThresholdSearch(cfg Config, opts ...ThresholdOption) (*ThresholdResult, error) {
	if cfg.Graph == nil {
		return nil, errors.New("faultcast: ThresholdSearch needs a graph")
	}
	o := thresholdOptions{trials: 800, resolution: 1.0 / 32, maxProbes: 20}
	for _, f := range opts {
		f(&o)
	}
	if o.trials < 1 || o.resolution <= 0 || o.maxProbes < 1 {
		return nil, fmt.Errorf("faultcast: invalid threshold search options %+v", o)
	}
	res := &ThresholdResult{
		Low:    0,
		High:   1,
		Theory: Threshold(cfg.Model, cfg.Fault, cfg.Graph.MaxDegree()),
	}
	target := 1 - 1/float64(cfg.Graph.N())
	for res.High-res.Low > o.resolution && len(res.Probes) < o.maxProbes {
		mid := (res.Low + res.High) / 2
		probe := cfg
		probe.P = mid
		probe.Trace = nil
		seedless := probe
		seedless.Seed = 0
		plan, err := Compile(probe)
		if err != nil {
			return nil, fmt.Errorf("faultcast: threshold probe p=%v: %w", mid, err)
		}
		estOpts := []EstimateOption{
			WithBaseSeed(rng.Derive(cfg.Seed, "threshold|"+seedless.CanonicalString())),
			WithTarget(target),
		}
		if o.workers > 0 {
			estOpts = append(estOpts, WithWorkers(o.workers))
		}
		est, err := plan.Estimate(o.trials, estOpts...)
		if err != nil {
			return nil, err
		}
		p := ThresholdProbe{P: mid, Estimate: est, Verdict: ProbeUndecided}
		switch {
		case est.Low > target:
			p.Verdict = ProbeSafe
			res.Low = mid
		case est.Hi < target:
			p.Verdict = ProbeUnsafe
			res.High = mid
		}
		res.Probes = append(res.Probes, p)
		if p.Verdict == ProbeUndecided {
			// The frontier itself: the remaining bracket cannot be ordered
			// by more bisection, only by more trials per probe.
			break
		}
	}
	res.Converged = res.High-res.Low <= o.resolution
	return res, nil
}

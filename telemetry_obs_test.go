package faultcast

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"faultcast/internal/exec"
	"faultcast/internal/telemetry"
)

// liveSpan builds a collector-backed span to hang estimation telemetry
// off, returning the span and the trace for post-run inspection.
func liveSpan(name string) (*telemetry.Span, *telemetry.Trace) {
	tr := telemetry.NewCollector(8, 4).StartTrace(name)
	return tr.StartSpan("execute"), tr
}

// TestTracedEstimateBitIdentical is the determinism half of the
// telemetry contract at the library layer: Estimate with a live span and
// batch probe attached must return exactly the Estimate computed bare,
// for every core the scenario supports — observation never feeds back
// into seeds, batch sizing, stop decisions, or tallies.
func TestTracedEstimateBitIdentical(t *testing.T) {
	scenarios := laneScenarios()
	for _, name := range []string{"flooding/omission", "simple-malicious/radio/flip", "composed/limited/flip"} {
		cfg, ok := scenarios[name]
		if !ok {
			t.Fatalf("scenario %s missing from laneScenarios", name)
		}
		for _, core := range []Core{CoreLanes, CoreBitset, CoreScalar} {
			plan, err := Compile(withCore(cfg, core))
			if err != nil {
				t.Fatalf("%s/%v: %v", name, core, err)
			}
			bare, err := plan.Estimate(300, WithBaseSeed(7))
			if err != nil {
				t.Fatal(err)
			}

			sp, tr := liveSpan("estimate")
			var mu sync.Mutex
			probeTrials := 0
			traced, err := plan.Estimate(300, WithBaseSeed(7),
				WithSpan(sp),
				WithBatchProbe(func(bs exec.BatchStat) {
					mu.Lock()
					probeTrials += bs.Trials
					mu.Unlock()
				}))
			if err != nil {
				t.Fatal(err)
			}
			sp.End()
			tr.Finish()
			if !reflect.DeepEqual(traced, bare) {
				t.Fatalf("%s on %s: traced %+v != bare %+v", name, plan.EstimationCore(), traced, bare)
			}
			if probeTrials != traced.Trials {
				t.Fatalf("%s on %s: probe saw %d trials, estimate ran %d",
					name, plan.EstimationCore(), probeTrials, traced.Trials)
			}
		}
	}
}

// TestTracedStoreRefinementBitIdentical extends the identity to the
// durable path: a store-backed refinement with tracing attached must
// land on the cold bits, and the store replay must surface as a
// "store-replay" child span carrying the resumed-trial count.
func TestTracedStoreRefinementBitIdentical(t *testing.T) {
	cfg := laneScenarios()["flooding/omission"]
	plan, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := plan.Estimate(200, WithBaseSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	st := &memTallyStore{}
	if _, err := plan.Estimate(96, WithBaseSeed(11), WithTallyStore(st)); err != nil {
		t.Fatal(err)
	}

	sp, tr := liveSpan("estimate")
	refined, err := plan.Estimate(200, WithBaseSeed(11), WithTallyStore(st), WithSpan(sp))
	if err != nil {
		t.Fatal(err)
	}
	sp.End()
	tr.Finish()
	if !reflect.DeepEqual(refined, cold) {
		t.Fatalf("traced store refinement diverged: %+v != cold %+v", refined, cold)
	}
	var replay *telemetry.Span
	for _, c := range sp.Children {
		if c.Name == "store-replay" {
			replay = c
		}
	}
	if replay == nil {
		t.Fatalf("no store-replay span under execute: %+v", sp.Children)
	}
	found := false
	for _, a := range replay.Attrs {
		if a.Key == "resumed_trials" {
			found = true
			if a.Value == "0" {
				t.Fatalf("store replay resumed 0 trials: %+v", replay.Attrs)
			}
		}
	}
	if !found {
		t.Fatalf("store-replay span missing resumed_trials: %+v", replay.Attrs)
	}
}

// TestPerRoundObservationByCore documents and pins which cores support
// per-round observation (internal/trace observers, Config.Trace logs):
// the round engines — bitset, scalar, and the goroutine-per-node
// concurrent engine — invoke the observer after every round, and
// Plan.Run always executes on a round engine, so per-trial round logs
// work even for a plan whose *estimation* runs on the lane-transposed
// core. The lane core itself packs 64 trials per word and never
// materializes per-round records, so estimation-path observation is
// per-batch (WithBatchProbe), never per-round.
func TestPerRoundObservationByCore(t *testing.T) {
	cfg := laneScenarios()["flooding/omission"]
	cfg.Trace = nil
	plan, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.EstimationCore() != "lanes" {
		t.Fatalf("scenario no longer lane-lowered: %s", plan.EstimationCore())
	}

	// A single trial of the same plan still yields per-round logs: Run
	// goes through the round engine regardless of the estimation core.
	var sb strings.Builder
	traced := cfg
	traced.Trace = &sb
	tplan, err := Compile(traced)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tplan.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "round") != tplan.Rounds() {
		t.Fatalf("round log has %d lines, want %d:\n%s", strings.Count(out, "round"), tplan.Rounds(), out)
	}
	// And the logged trial is the same trial: rerunning without the log
	// gives the identical Result.
	bare, err := plan.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Success != bare.Success || res.Rounds != bare.Rounds {
		t.Fatalf("traced Run diverged: %+v != %+v", res, bare)
	}
}

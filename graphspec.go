package faultcast

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"faultcast/internal/graph"
)

// ParseGraph builds a graph from a compact textual spec, the format used
// by the faultcast CLI:
//
//	line:N        ring:N        star:N       complete:N    k2
//	tree:N:K      grid:RxC      torus:RxC    hypercube:D
//	layered:M     caterpillar:SPINE:LEGS
//	gnp:N:P       randtree:N    file:PATH
//
// Random families (gnp, randtree) are deterministic in seed. file:PATH
// loads an edge list ("n <count>" header, then one "u v" pair per line,
// '#' comments allowed).
//
// Specs are validated, never trusted: families with structural minimums
// reject undersized parameters (ring needs n >= 3, torus 3x3), and every
// family is capped so a hostile or fuzzed spec cannot exhaust memory —
// at most 65536 vertices (hypercube <= 16 dimensions, layered m <= 16),
// and at most 1024 for the dense families (complete, gnp). The fuzz
// target FuzzParseGraphSpec enforces the parse-don't-panic contract.
func ParseGraph(spec string, seed uint64) (*Graph, error) {
	trimmed := strings.TrimSpace(spec)
	if path, ok := strings.CutPrefix(trimmed, "file:"); ok {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("faultcast: graph spec %q: %w", spec, err)
		}
		defer f.Close()
		g, err := graph.ReadEdgeList(f, path)
		if err != nil {
			return nil, err
		}
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("faultcast: graph file %q: %w", path, err)
		}
		return g, nil
	}
	parts := strings.Split(strings.ToLower(trimmed), ":")
	kind := parts[0]
	args := parts[1:]

	argN := func(i int) (int, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("faultcast: graph spec %q: missing argument %d", spec, i+1)
		}
		n, err := strconv.Atoi(args[i])
		if err != nil || n < 1 {
			return 0, fmt.Errorf("faultcast: graph spec %q: bad integer %q", spec, args[i])
		}
		return n, nil
	}
	argDims := func(i int) (int, int, error) {
		if i >= len(args) {
			return 0, 0, fmt.Errorf("faultcast: graph spec %q: missing RxC argument", spec)
		}
		dims := strings.Split(args[i], "x")
		if len(dims) != 2 {
			return 0, 0, fmt.Errorf("faultcast: graph spec %q: want RxC, got %q", spec, args[i])
		}
		r, err1 := strconv.Atoi(dims[0])
		c, err2 := strconv.Atoi(dims[1])
		if err1 != nil || err2 != nil || r < 1 || c < 1 {
			return 0, 0, fmt.Errorf("faultcast: graph spec %q: bad dimensions %q", spec, args[i])
		}
		return r, c, nil
	}

	// Size caps: a spec is user input, so construction cost must stay
	// bounded no matter what it says. maxSpecNodes bounds the vertex
	// count of every family; maxSpecDense bounds families with Θ(n²)
	// edges or construction work (complete, gnp). The division-based
	// product check also rules out r*c overflow.
	const (
		maxSpecNodes = 1 << 16
		maxSpecDense = 1024
	)
	capNodes := func(n int) error {
		if n > maxSpecNodes {
			return fmt.Errorf("faultcast: graph spec %q: %d vertices exceeds the cap of %d", spec, n, maxSpecNodes)
		}
		return nil
	}
	capProduct := func(r, c int) error {
		if r > maxSpecNodes/c {
			return fmt.Errorf("faultcast: graph spec %q: %dx%d exceeds the cap of %d vertices", spec, r, c, maxSpecNodes)
		}
		return nil
	}

	switch kind {
	case "line", "path":
		n, err := argN(0)
		if err != nil {
			return nil, err
		}
		if err := capNodes(n); err != nil {
			return nil, err
		}
		return Line(n), nil
	case "ring", "cycle":
		n, err := argN(0)
		if err != nil {
			return nil, err
		}
		if n < 3 {
			return nil, fmt.Errorf("faultcast: graph spec %q: a ring needs at least 3 vertices", spec)
		}
		if err := capNodes(n); err != nil {
			return nil, err
		}
		return Ring(n), nil
	case "star":
		n, err := argN(0)
		if err != nil {
			return nil, err
		}
		if err := capNodes(n); err != nil {
			return nil, err
		}
		return Star(n), nil
	case "complete", "clique":
		n, err := argN(0)
		if err != nil {
			return nil, err
		}
		if n > maxSpecDense {
			return nil, fmt.Errorf("faultcast: graph spec %q: complete graphs are capped at %d vertices", spec, maxSpecDense)
		}
		return Complete(n), nil
	case "k2", "twonode":
		return TwoNode(), nil
	case "tree":
		n, err := argN(0)
		if err != nil {
			return nil, err
		}
		k := 2
		if len(args) > 1 {
			if k, err = argN(1); err != nil {
				return nil, err
			}
		}
		if err := capNodes(n); err != nil {
			return nil, err
		}
		return KaryTree(n, k), nil
	case "grid":
		r, c, err := argDims(0)
		if err != nil {
			return nil, err
		}
		if err := capProduct(r, c); err != nil {
			return nil, err
		}
		return Grid(r, c), nil
	case "torus":
		r, c, err := argDims(0)
		if err != nil {
			return nil, err
		}
		if r < 3 || c < 3 {
			return nil, fmt.Errorf("faultcast: graph spec %q: a torus needs both dimensions >= 3", spec)
		}
		if err := capProduct(r, c); err != nil {
			return nil, err
		}
		return Torus(r, c), nil
	case "hypercube", "cube":
		d, err := argN(0)
		if err != nil {
			return nil, err
		}
		if d > 16 {
			return nil, fmt.Errorf("faultcast: graph spec %q: hypercube dimension is capped at 16", spec)
		}
		return Hypercube(d), nil
	case "layered":
		m, err := argN(0)
		if err != nil {
			return nil, err
		}
		if m > 16 {
			return nil, fmt.Errorf("faultcast: graph spec %q: layered graphs are capped at m=16", spec)
		}
		return Layered(m), nil
	case "caterpillar":
		spine, err := argN(0)
		if err != nil {
			return nil, err
		}
		legs, err := argN(1)
		if err != nil {
			return nil, err
		}
		if legs >= maxSpecNodes {
			return nil, fmt.Errorf("faultcast: graph spec %q: %d legs exceeds the cap of %d vertices", spec, legs, maxSpecNodes)
		}
		if err := capProduct(spine, legs+1); err != nil {
			return nil, err
		}
		return Caterpillar(spine, legs), nil
	case "gnp":
		n, err := argN(0)
		if err != nil {
			return nil, err
		}
		if len(args) < 2 {
			return nil, fmt.Errorf("faultcast: graph spec %q: gnp needs a probability", spec)
		}
		p, err := strconv.ParseFloat(args[1], 64)
		// The negated comparison rejects NaN, which Atoi-style checks miss.
		if err != nil || !(p >= 0 && p <= 1) {
			return nil, fmt.Errorf("faultcast: graph spec %q: bad probability %q", spec, args[1])
		}
		if n > maxSpecDense {
			return nil, fmt.Errorf("faultcast: graph spec %q: gnp graphs are capped at %d vertices", spec, maxSpecDense)
		}
		return GNP(n, p, seed), nil
	case "randtree":
		n, err := argN(0)
		if err != nil {
			return nil, err
		}
		if err := capNodes(n); err != nil {
			return nil, err
		}
		return RandomTree(n, seed), nil
	default:
		return nil, fmt.Errorf("faultcast: unknown graph kind %q (see ParseGraph doc for the spec grammar)", kind)
	}
}

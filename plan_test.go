package faultcast

import (
	"testing"
)

// planScenarios enumerates one configuration per (model × fault ×
// algorithm) combination the builder accepts; the compile/run split must
// be invisible for every one of them.
func planScenarios() map[string]Config {
	return map[string]Config{
		"mp/omission/simple-omission": {
			Graph: Line(12), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Omission, P: 0.4,
			Algorithm: SimpleOmission,
		},
		"mp/omission/flooding": {
			Graph: Grid(4, 4), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Omission, P: 0.5,
			Algorithm: Flooding,
		},
		"mp/malicious/simple-malicious": {
			Graph: KaryTree(15, 2), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Malicious, P: 0.3,
			Algorithm: SimpleMalicious, Adversary: FlipAdv,
		},
		"mp/malicious/worst-case-equivocator": {
			Graph: TwoNode(), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Malicious, P: 0.5,
			Algorithm: SimpleMalicious, Adversary: WorstCase, WindowC: 9,
		},
		"mp/limited/composed": {
			Graph: Line(9), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: LimitedMalicious, P: 0.2,
			Algorithm: Composed, Adversary: FlipAdv,
		},
		"mp/limited/timing-bit": {
			Graph: TwoNode(), Source: 0, Message: []byte("0"),
			Model: MessagePassing, Fault: LimitedMalicious, P: 0.6,
			Algorithm: TimingBit, Adversary: CrashAdv,
		},
		"radio/omission/simple-omission": {
			Graph: Star(6), Source: 1, Message: []byte("1"),
			Model: Radio, Fault: Omission, P: 0.3,
			Algorithm: SimpleOmission,
		},
		"radio/omission/radio-repeat": {
			Graph: Layered(3), Source: 0, Message: []byte("1"),
			Model: Radio, Fault: Omission, P: 0.4,
			Algorithm: RadioRepeat,
		},
		"radio/malicious/radio-repeat": {
			Graph: Line(10), Source: 0, Message: []byte("1"),
			Model: Radio, Fault: Malicious, P: 0.05,
			Algorithm: RadioRepeat, Adversary: FlipAdv,
		},
		"radio/malicious/worst-case-star": {
			Graph: Star(5), Source: 1, Message: []byte("1"),
			Model: Radio, Fault: Malicious, P: 0.2,
			Algorithm: SimpleMalicious, Adversary: WorstCase, WindowC: 6,
		},
	}
}

// TestPlanRunMatchesOneShot: Plan.Run(seed) must be bit-identical to the
// one-shot Run(cfg) with that seed, for every scenario and several seeds.
func TestPlanRunMatchesOneShot(t *testing.T) {
	for name, cfg := range planScenarios() {
		t.Run(name, func(t *testing.T) {
			plan, err := Compile(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for seed := uint64(1); seed <= 5; seed++ {
				c := cfg
				c.Seed = seed
				want, err := Run(c)
				if err != nil {
					t.Fatal(err)
				}
				got, err := plan.Run(seed)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("seed %d: plan %+v != one-shot %+v", seed, got, want)
				}
			}
		})
	}
}

// TestPlanCoresAndEnginesEquivalent: for every compiled scenario — the
// paper's real protocols, not test fixtures — the word-parallel bitset
// core, the scalar reference core, and the goroutine-per-node engine must
// produce identical public Results on identical seeds. This is the
// public-API face of the engine's differential-equivalence matrix.
func TestPlanCoresAndEnginesEquivalent(t *testing.T) {
	for name, cfg := range planScenarios() {
		t.Run(name, func(t *testing.T) {
			variants := map[string]Config{}
			scalar := cfg
			scalar.ScalarCore = true
			variants["scalar-core"] = scalar
			conc := cfg
			conc.Concurrent = true
			variants["concurrent-engine"] = conc
			concScalar := cfg
			concScalar.Concurrent = true
			concScalar.ScalarCore = true
			variants["concurrent-scalar"] = concScalar

			plan, err := Compile(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for vname, vcfg := range variants {
				vplan, err := Compile(vcfg)
				if err != nil {
					t.Fatalf("%s: %v", vname, err)
				}
				for seed := uint64(1); seed <= 3; seed++ {
					want, err := plan.Run(seed)
					if err != nil {
						t.Fatal(err)
					}
					got, err := vplan.Run(seed)
					if err != nil {
						t.Fatalf("%s seed %d: %v", vname, seed, err)
					}
					if got != want {
						t.Fatalf("%s seed %d: %+v != default %+v", vname, seed, got, want)
					}
				}
			}
		})
	}
}

// TestPlanRunReuse: two consecutive Plan.Run calls with the same seed must
// agree exactly — no state may leak between trials of a compiled plan.
func TestPlanRunReuse(t *testing.T) {
	for name, cfg := range planScenarios() {
		t.Run(name, func(t *testing.T) {
			plan, err := Compile(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Interleave a different seed to perturb any shared state.
			first, err := plan.Run(7)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := plan.Run(1234); err != nil {
				t.Fatal(err)
			}
			again, err := plan.Run(7)
			if err != nil {
				t.Fatal(err)
			}
			if first != again {
				t.Fatalf("reuse diverged: %+v vs %+v", first, again)
			}
		})
	}
}

// TestPlanEstimateMatchesPerTrialRuns: Estimate must count exactly the
// successes of Plan.Run over seeds base, base+1, ..., regardless of the
// worker count.
func TestPlanEstimateMatchesPerTrialRuns(t *testing.T) {
	cfg := planScenarios()["mp/omission/simple-omission"]
	cfg.Seed = 42
	plan, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 50
	wantSucc := 0
	for i := uint64(0); i < trials; i++ {
		res, err := plan.Run(42 + i)
		if err != nil {
			t.Fatal(err)
		}
		if res.Success {
			wantSucc++
		}
	}
	for _, workers := range []int{1, 4} {
		est, err := plan.Estimate(trials, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if est.Succeeds != wantSucc || est.Trials != trials {
			t.Fatalf("workers=%d: estimate %d/%d, per-trial runs %d/%d",
				workers, est.Succeeds, est.Trials, wantSucc, trials)
		}
	}
}

// TestPlanEstimateHonorsConcurrent: with Config.Concurrent set the
// estimate must use the goroutine-per-node engine — whose results are
// bit-identical — so the two estimates must agree exactly.
func TestPlanEstimateHonorsConcurrent(t *testing.T) {
	cfg := planScenarios()["mp/omission/flooding"]
	cfg.Seed = 9
	seqPlan, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Concurrent = true
	concPlan, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := seqPlan.Estimate(30)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := concPlan.Estimate(30, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if seq != conc {
		t.Fatalf("engines disagree through Estimate: %+v vs %+v", seq, conc)
	}
}

// TestPlanEstimateEarlyStop: a scenario that always succeeds (p = 0) must
// stop long before the requested trial budget once the interval clears the
// almost-safe bound, and stopping must be deterministic.
func TestPlanEstimateEarlyStop(t *testing.T) {
	cfg := Config{
		Graph: Line(8), Source: 0, Message: []byte("1"),
		Model: MessagePassing, Fault: Omission, P: 0,
		Algorithm: Flooding, Seed: 3,
	}
	plan, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 100000
	est, err := plan.Estimate(budget, WithAlmostSafeTarget())
	if err != nil {
		t.Fatal(err)
	}
	if est.Trials >= budget {
		t.Fatalf("no early stop: ran all %d trials", est.Trials)
	}
	if est.Rate != 1 {
		t.Fatalf("p=0 flooding failed: %+v", est)
	}
	again, err := plan.Estimate(budget, WithAlmostSafeTarget())
	if err != nil {
		t.Fatal(err)
	}
	if est != again {
		t.Fatalf("early stopping nondeterministic: %+v vs %+v", est, again)
	}
	// Half-width stopping must also trigger and be deterministic.
	hw, err := plan.Estimate(budget, WithHalfWidth(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if hw.Trials >= budget {
		t.Fatalf("half-width rule never stopped: %+v", hw)
	}
	if half := (hw.Hi - hw.Low) / 2; half > 0.05 {
		t.Fatalf("stopped with half-width %v > 0.05", half)
	}
}

// TestEstimateSuccessStillFullSample: the wrapper keeps the original
// exhaustive semantics — no early stopping without explicit options.
func TestEstimateSuccessStillFullSample(t *testing.T) {
	cfg := Config{
		Graph: Line(6), Source: 0, Message: []byte("1"),
		Model: MessagePassing, Fault: Omission, P: 0,
		Algorithm: Flooding, Seed: 1,
	}
	est, err := EstimateSuccess(cfg, 500)
	if err != nil {
		t.Fatal(err)
	}
	if est.Trials != 500 {
		t.Fatalf("EstimateSuccess ran %d/500 trials", est.Trials)
	}
}

// TestCompileRejectsBadConfigs: Compile must fail exactly where Run fails.
func TestCompileRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Source: 0, Message: []byte("1")},                       // nil graph
		{Graph: Line(4), Source: 0},                             // empty message
		{Graph: Line(4), Source: 9, Message: []byte("1")},       // source range
		{Graph: Line(4), Source: 0, Message: []byte("1"), P: 1}, // p range
		{Graph: Line(4), Source: 0, Message: []byte("1"), Model: Radio, // model mismatch
			Algorithm: Flooding},
	}
	for i, cfg := range bad {
		if _, err := Compile(cfg); err == nil {
			t.Fatalf("case %d: Compile accepted invalid config", i)
		}
	}
}

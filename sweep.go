package faultcast

import (
	"context"
	"errors"
	"fmt"
	"math"

	"faultcast/internal/exec"
	"faultcast/internal/rng"
	"faultcast/internal/stat"
	"faultcast/internal/telemetry"
)

// SweepGraph is the graph axis entry of a SweepSpec: a topology plus the
// broadcast source used on it. Either Spec (ParseGraph grammar) or a
// pre-built Graph may be given; Graph wins when both are set.
type SweepGraph struct {
	Spec   string
	Graph  *Graph
	Source int
}

// resolve returns the concrete topology, parsing Spec with the sweep seed
// (random families are deterministic in it).
func (sg SweepGraph) resolve(seed uint64) (*Graph, error) {
	if sg.Graph != nil {
		return sg.Graph, nil
	}
	return ParseGraph(sg.Spec, seed)
}

// CellBudget is the per-cell trial budget and stopping policy of a sweep.
type CellBudget struct {
	// Trials is the maximum trial count per cell (default 1000).
	Trials int
	// HalfWidth, when positive, stops a cell once its 95% Wilson interval
	// half-width shrinks to it.
	HalfWidth float64
	// AlmostSafe stops a cell once its interval is decided against the
	// paper's almost-safety bound 1 − 1/n for the cell's graph — the
	// natural rule for feasibility sweeps, where cells far from the
	// threshold frontier decide after a handful of batches.
	AlmostSafe bool
	// Target and UseTarget stop against an explicit success-probability
	// target instead; ignored when AlmostSafe is set.
	Target    float64
	UseTarget bool
	// Z is the Wilson band width of the target check (default 2.576, the
	// 99% band, strictly wider than the reported 95% interval so a
	// stopped cell's reported interval is decided the same way).
	Z float64
}

func (b CellBudget) withDefaults() CellBudget {
	if b.Trials <= 0 {
		b.Trials = 1000
	}
	return b
}

// rule lowers the budget to the cell's stopping rule.
func (b CellBudget) rule(plan *Plan) stat.StopRule {
	var r stat.StopRule
	switch {
	case b.AlmostSafe:
		r.UseTarget = true
		r.Target = plan.AlmostSafeTarget()
	case b.UseTarget:
		r.UseTarget = true
		r.Target = b.Target
	}
	if r.UseTarget {
		r.Z = b.Z
		if r.Z == 0 {
			r.Z = 2.576
		}
	}
	r.HalfWidth = b.HalfWidth
	return r
}

// SweepSpec declares a parameter sweep: axes whose cross product is the
// cell grid, a per-cell budget, and a master seed. Compile it once with
// CompileSweep, then stream every cell's estimate from SweepPlan.Run on
// one shared worker pool.
//
// Cells are expanded in a fixed documented order — Graphs (outermost),
// then Models, Faults, Adversaries, Algorithms, Messages, WindowCs, and
// Ps (innermost) — so a caller can map cell indices back to axis values
// arithmetically. Empty axes default to a single element: MessagePassing,
// Omission, WorstCase, Auto, "1", and WindowC 0 (derive from p); Graphs
// and Ps are required.
//
// Alternatively, Cells lists explicit cell configurations verbatim,
// bypassing the axes — for grids whose parameters co-vary in ways a cross
// product cannot express (e.g. a window constant derived from each
// cell's p and degree).
//
// Seeding: every cell's base seed is derived as rng.Derive(Seed, key)
// from the cell's seed-less canonical identity, so cell streams are
// decorrelated from each other and from the master, and adding, removing,
// or reordering cells never changes the seeds of the others.
// Config.Seed values in explicit Cells are therefore ignored; callers
// needing a hand-picked seed should use Plan.Estimate directly.
type SweepSpec struct {
	Graphs      []SweepGraph
	Models      []Model
	Faults      []Fault
	Adversaries []AdversaryKind
	Algorithms  []Algorithm
	Messages    []string
	WindowCs    []float64
	Ps          []float64

	// Alpha and Rounds apply to every cell (0 = per-algorithm defaults).
	Alpha  float64
	Rounds int

	// Cells, when non-empty, is the explicit cell list (axes above are
	// ignored except Seed and Budget).
	Cells []Config

	Seed   uint64
	Budget CellBudget
}

// CellCount returns the number of cells the spec expands to — the axis
// cross product (empty axes counting as one) or len(Cells) — without
// compiling anything. Servers use it to reject oversized grids before
// paying expansion or compilation cost; the count saturates at
// math.MaxInt on overflow.
func (spec SweepSpec) CellCount() int {
	if len(spec.Cells) > 0 {
		return len(spec.Cells)
	}
	axis := func(n int) int {
		if n == 0 {
			return 1
		}
		return n
	}
	count := len(spec.Graphs) * len(spec.Ps) // both required; 0 if absent
	for _, n := range []int{
		axis(len(spec.Models)), axis(len(spec.Faults)), axis(len(spec.Adversaries)),
		axis(len(spec.Algorithms)), axis(len(spec.Messages)), axis(len(spec.WindowCs)),
	} {
		if count > 0 && n > math.MaxInt/count {
			return math.MaxInt
		}
		count *= n
	}
	return count
}

// SweepCell is one compiled cell of a sweep.
type SweepCell struct {
	// Index is the cell's position in expansion order.
	Index int
	// Config is the cell's full configuration; its Seed is the derived
	// per-cell base seed.
	Config Config
	// Graph records the graph-axis entry the cell came from (Spec is
	// empty for explicit Cells and pre-built graphs).
	Graph SweepGraph
	// Key is the seed-inclusive Config.Fingerprint — the identity of the
	// cell's result, under which a serving layer caches its estimate.
	Key string
	// PlanKey is the seed-less fingerprint: cells sharing it share one
	// compiled plan (and, during a run, per-worker engine state).
	PlanKey string

	plan *Plan
}

// Rounds returns the cell's compiled round horizon.
func (c *SweepCell) Rounds() int { return c.plan.Rounds() }

// AlmostSafeTarget returns 1 − 1/n for the cell's graph.
func (c *SweepCell) AlmostSafeTarget() float64 { return c.plan.AlmostSafeTarget() }

// Plan returns the cell's compiled plan (shared across cells with equal
// PlanKey).
func (c *SweepCell) Plan() *Plan { return c.plan }

// CellResult is one cell's estimate, delivered by SweepPlan.Run as soon
// as the cell's stream is decided.
type CellResult struct {
	Index    int
	Cell     *SweepCell
	Estimate Estimate
	// Resumed is the trial count carried in through WithCellPrev (0 for a
	// fresh estimate); Estimate.Trials − Resumed trials were simulated by
	// this run.
	Resumed int
}

// SweepPlan is a compiled sweep: every cell's scenario lowered to a
// shareable plan, ready to run many times. Like Plan, it is immutable
// after CompileSweep and safe for concurrent use.
type SweepPlan struct {
	budget CellBudget
	cells  []SweepCell
	plans  int
}

// CompileSweep expands the spec's cell grid and compiles every distinct
// scenario exactly once: cells that differ only in seed-irrelevant ways
// (duplicate axis values, seed ensembles of one scenario) share a single
// compiled plan, keyed by the seed-less Config.Fingerprint.
func CompileSweep(spec SweepSpec) (*SweepPlan, error) {
	budget := spec.Budget.withDefaults()
	var cfgs []Config
	var metas []SweepGraph
	if len(spec.Cells) > 0 {
		cfgs = append([]Config(nil), spec.Cells...)
		metas = make([]SweepGraph, len(cfgs))
		for i, cfg := range cfgs {
			metas[i] = SweepGraph{Graph: cfg.Graph, Source: cfg.Source}
		}
	} else {
		if len(spec.Graphs) == 0 {
			return nil, errors.New("faultcast: sweep needs at least one graph (or explicit Cells)")
		}
		if len(spec.Ps) == 0 {
			return nil, errors.New("faultcast: sweep needs at least one p (or explicit Cells)")
		}
		models := spec.Models
		if len(models) == 0 {
			models = []Model{MessagePassing}
		}
		faults := spec.Faults
		if len(faults) == 0 {
			faults = []Fault{Omission}
		}
		advs := spec.Adversaries
		if len(advs) == 0 {
			advs = []AdversaryKind{WorstCase}
		}
		algos := spec.Algorithms
		if len(algos) == 0 {
			algos = []Algorithm{Auto}
		}
		msgs := spec.Messages
		if len(msgs) == 0 {
			msgs = []string{"1"}
		}
		wcs := spec.WindowCs
		if len(wcs) == 0 {
			wcs = []float64{0}
		}
		for _, sg := range spec.Graphs {
			g, err := sg.resolve(spec.Seed)
			if err != nil {
				return nil, err
			}
			for _, model := range models {
				for _, fault := range faults {
					for _, adv := range advs {
						for _, algo := range algos {
							for _, msg := range msgs {
								for _, wc := range wcs {
									for _, p := range spec.Ps {
										cfgs = append(cfgs, Config{
											Graph: g, Source: sg.Source, Message: []byte(msg),
											Model: model, Fault: fault, P: p,
											Algorithm: algo, WindowC: wc,
											Alpha: spec.Alpha, Adversary: adv, Rounds: spec.Rounds,
										})
										metas = append(metas, SweepGraph{Spec: sg.Spec, Graph: g, Source: sg.Source})
									}
								}
							}
						}
					}
				}
			}
		}
	}

	plans := map[string]*Plan{}
	cells := make([]SweepCell, len(cfgs))
	for i, cfg := range cfgs {
		seedless := cfg
		seedless.Seed = 0
		seedless.Trace = nil
		canonical := seedless.CanonicalString()
		planKey := seedless.Fingerprint()
		plan, ok := plans[planKey]
		if !ok {
			var err error
			plan, err = Compile(seedless)
			if err != nil {
				return nil, fmt.Errorf("faultcast: sweep cell %d: %w", i, err)
			}
			plans[planKey] = plan
		}
		cfg.Seed = rng.Derive(spec.Seed, canonical)
		cells[i] = SweepCell{
			Index: i, Config: cfg, Graph: metas[i],
			Key: cfg.Fingerprint(), PlanKey: planKey, plan: plan,
		}
	}
	return &SweepPlan{budget: budget, cells: cells, plans: len(plans)}, nil
}

// Cells returns the compiled cells in expansion order. The slice is the
// plan's own; callers must not mutate it.
func (sp *SweepPlan) Cells() []SweepCell { return sp.cells }

// PlanCount returns the number of distinct compiled plans behind the
// cells — the compilation sharing the sweep achieved.
func (sp *SweepPlan) PlanCount() int { return sp.plans }

// Budget returns the per-cell budget the sweep was compiled with.
func (sp *SweepPlan) Budget() CellBudget { return sp.budget }

// sweepOptions collects Run tuning; see the SweepOption constructors.
type sweepOptions struct {
	workers    int
	prev       func(c *SweepCell) (Estimate, bool)
	dispatcher exec.Dispatcher
	store      TallyStore
	span       *telemetry.Span
	probe      func(exec.BatchStat)
}

// SweepOption tunes SweepPlan.Run.
type SweepOption func(*sweepOptions)

// WithSweepWorkers bounds the shared worker pool (default GOMAXPROCS).
func WithSweepWorkers(n int) SweepOption {
	return func(o *sweepOptions) { o.workers = n }
}

// WithCellPrev supplies a prior estimate per cell — a result cache's view
// of SweepCell.Key. A prior that already satisfies the budget completes
// the cell with zero simulation; otherwise the cell's stream resumes at
// seed base+prev.Trials and only the marginal trials run, exactly as
// Plan.EstimateFrom refines a cached estimate.
func WithCellPrev(f func(c *SweepCell) (Estimate, bool)) SweepOption {
	return func(o *sweepOptions) { o.prev = f }
}

// WithSweepTallyStore resumes every cell from ts's persisted prefix of
// its (PlanKey, derived seed) stream and appends the marginal batches
// back as cells complete — WithTallyStore at sweep granularity. Cells
// whose stored confidence already meets the budget complete with zero
// simulation (CellResult.Resumed == Estimate.Trials), so re-running a
// sweep against a warm store only simulates what changed; results stay
// bit-identical to a cold run by the same replay contract. A cell with a
// WithCellPrev prior takes that prior and skips the store, exactly as
// EstimateFrom's prev disables WithTallyStore.
func WithSweepTallyStore(ts TallyStore) SweepOption {
	return func(o *sweepOptions) { o.store = ts }
}

// WithSweepDispatcher routes every cell's trial stream through d — e.g. a
// cluster coordinator fanning shards out to remote faultcastd workers —
// instead of the in-process pool. The determinism contract makes the two
// interchangeable: each cell's estimate is bit-identical either way.
func WithSweepDispatcher(d exec.Dispatcher) SweepOption {
	return func(o *sweepOptions) { o.dispatcher = d }
}

// WithSweepSpan hangs every cell's execution telemetry off s — the sweep
// analogue of WithSpan: store replay becomes a "store-replay" child with
// the total resumed-trial count, and every exec cell carries s so a
// cluster dispatcher's shard spans land under it. Nil s is a no-op.
func WithSweepSpan(s *telemetry.Span) SweepOption {
	return func(o *sweepOptions) { o.span = s }
}

// WithSweepProbe observes per-batch timing attribution across all cells
// (exec.BatchStat.Cell is the distinct-key group index) — WithBatchProbe
// at sweep granularity, with the same keep-it-cheap contract.
func WithSweepProbe(f func(exec.BatchStat)) SweepOption {
	return func(o *sweepOptions) { o.probe = f }
}

// Run executes every cell on one bounded worker pool and calls emit once
// per cell as its estimate is decided. Workers multiplex across cells —
// an early-stopped cell's workers immediately flow to undecided ones —
// and emit calls are serialized in completion order (not index order),
// so a streaming consumer can forward each result as it lands.
//
// Cells with identical Key describe bit-identical computations (same
// plan, same derived seed); Run executes each distinct Key once and
// emits the shared estimate for every duplicate index.
//
// Each cell's estimate is bit-identical to plan.Estimate run cell-by-cell
// with the same budget and base seed; only the wall-clock schedule
// differs. Run blocks until every cell is emitted or ctx is cancelled,
// returning ctx.Err() in the latter case (cells still undecided at
// cancellation are not emitted).
func (sp *SweepPlan) Run(ctx context.Context, emit func(CellResult), opts ...SweepOption) error {
	var o sweepOptions
	for _, f := range opts {
		f(&o)
	}
	// Group duplicate cells: one execution per distinct Key.
	groups := map[string][]int{}
	var order []string
	for i := range sp.cells {
		k := sp.cells[i].Key
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	execCells := make([]exec.Cell, len(order))
	prevs := make([]Estimate, len(order))
	recs := make([]*tallyRecorder, len(order))
	var replaySpan *telemetry.Span
	resumedTotal := 0
	if o.store != nil {
		replaySpan = o.span.StartChild("store-replay")
	}
	for gi, k := range order {
		c := &sp.cells[groups[k][0]]
		if o.prev != nil {
			if e, ok := o.prev(c); ok {
				prevs[gi] = e
			}
		}
		rule := sp.budget.rule(c.plan)
		execCells[gi] = exec.Cell{
			MaxTrials: sp.budget.Trials,
			BaseSeed:  c.Config.Seed,
			Start:     stat.Proportion{Successes: prevs[gi].Succeeds, Trials: prevs[gi].Trials},
			Rule:      rule,
			NewTrial:  c.plan.newTrialMaker(),
			NewBlock:  c.plan.newBlockMaker(),
			SharedKey: c.PlanKey,
			Scenario:  c.Config,
			Trace:     o.span,
			Probe:     o.probe,
		}
		if o.store != nil && prevs[gi].Trials == 0 {
			// Durable resume, exactly as in EstimateFrom: replay the
			// stored prefix at cold boundaries, simulate the rest, and
			// append the marginal batches once the cell completes.
			batch := storeBatch(rule)
			start := stat.Proportion{}
			if stored, err := o.store.LoadTally(c.PlanKey, c.Config.Seed, batch); err == nil {
				start, _ = replayStored(stored, sp.budget.Trials, rule)
			}
			prevs[gi] = Estimate{Trials: start.Trials, Succeeds: start.Successes}
			execCells[gi].Start = start
			execCells[gi].Bucket = batch
			rec := &tallyRecorder{store: o.store, planKey: c.PlanKey, baseSeed: c.Config.Seed, batch: batch, start: start.Trials}
			execCells[gi].OnBatch = rec.observe
			recs[gi] = rec
			resumedTotal += start.Trials
		}
	}
	if replaySpan != nil {
		replaySpan.SetAttr("resumed_trials", resumedTotal)
		replaySpan.End()
	}
	d := o.dispatcher
	if d == nil {
		d = exec.Local{}
	}
	return d.Run(ctx, o.workers, execCells, func(gi int, p stat.Proportion) {
		// onDone is serialized and ordered after the cell's last fold, so
		// the recorder's buckets are complete and safely visible here.
		recs[gi].flush()
		lo, hi := p.Wilson(1.96)
		est := Estimate{Rate: p.Rate(), Low: lo, Hi: hi, Trials: p.Trials, Succeeds: p.Successes}
		for _, i := range groups[order[gi]] {
			emit(CellResult{Index: i, Cell: &sp.cells[i], Estimate: est, Resumed: prevs[gi].Trials})
		}
	})
}

// Collect is Run with the results gathered into index order — the
// non-streaming convenience for tables and tests.
func (sp *SweepPlan) Collect(ctx context.Context, opts ...SweepOption) ([]CellResult, error) {
	out := make([]CellResult, len(sp.cells))
	err := sp.Run(ctx, func(r CellResult) { out[r.Index] = r }, opts...)
	if err != nil {
		return nil, err
	}
	return out, nil
}

package faultcast

import (
	"context"
	"testing"
	"time"
)

func feasibilitySpec(seed uint64) SweepSpec {
	return SweepSpec{
		Graphs: []SweepGraph{
			{Spec: "line:12"},
			{Graph: Star(8), Source: 1},
		},
		Models:     []Model{MessagePassing, Radio},
		Faults:     []Fault{Omission},
		Algorithms: []Algorithm{SimpleOmission},
		Ps:         []float64{0.3, 0.6},
		Seed:       seed,
		Budget:     CellBudget{Trials: 200, AlmostSafe: true},
	}
}

// TestSweepExpansionOrder: cells must come out in the documented
// cross-product order (Graphs, Models, ..., Ps innermost) with correct
// axis values, keys, and derived seeds.
func TestSweepExpansionOrder(t *testing.T) {
	sp, err := CompileSweep(feasibilitySpec(7))
	if err != nil {
		t.Fatal(err)
	}
	cells := sp.Cells()
	if len(cells) != 2*2*2 {
		t.Fatalf("expanded %d cells, want 8", len(cells))
	}
	// Index arithmetic: ((graph*models)+model)*ps + p.
	for gi, wantN := range []int{12, 8} {
		for mi, wantModel := range []Model{MessagePassing, Radio} {
			for pi, wantP := range []float64{0.3, 0.6} {
				c := cells[(gi*2+mi)*2+pi]
				if c.Config.Graph.N() != wantN || c.Config.Model != wantModel || c.Config.P != wantP {
					t.Fatalf("cell %d: got (n=%d, %v, p=%v), want (n=%d, %v, p=%v)",
						c.Index, c.Config.Graph.N(), c.Config.Model, c.Config.P, wantN, wantModel, wantP)
				}
			}
		}
	}
	seeds := map[uint64]bool{}
	keys := map[string]bool{}
	for i := range cells {
		c := &cells[i]
		if c.Config.Seed == 0 || seeds[c.Config.Seed] {
			t.Fatalf("cell %d: bad or duplicate derived seed %d", i, c.Config.Seed)
		}
		seeds[c.Config.Seed] = true
		if keys[c.Key] {
			t.Fatalf("cell %d: duplicate key", i)
		}
		keys[c.Key] = true
		if c.Rounds() <= 0 {
			t.Fatalf("cell %d: no compiled horizon", i)
		}
	}
	// Star source must have survived expansion.
	if cells[4].Config.Source != 1 {
		t.Fatalf("star cells lost their source: %d", cells[4].Config.Source)
	}
}

// TestSweepSharesPlans: cells differing only in p compile distinct plans,
// but duplicate scenarios (and per-cell seeds) must share one.
func TestSweepSharesPlans(t *testing.T) {
	spec := SweepSpec{
		Graphs:     []SweepGraph{{Spec: "line:10"}},
		Algorithms: []Algorithm{SimpleOmission},
		Ps:         []float64{0.3, 0.3, 0.5}, // deliberate duplicate axis value
		Seed:       1,
		Budget:     CellBudget{Trials: 50},
	}
	sp, err := CompileSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sp.PlanCount() != 2 {
		t.Fatalf("compiled %d plans for 2 distinct scenarios", sp.PlanCount())
	}
	cells := sp.Cells()
	if cells[0].PlanKey != cells[1].PlanKey || cells[0].Key != cells[1].Key {
		t.Fatal("duplicate cells did not share plan/key")
	}
	if cells[0].Plan() != cells[1].Plan() {
		t.Fatal("duplicate cells hold distinct plan pointers")
	}
	res, err := sp.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Estimate != res[1].Estimate {
		t.Fatalf("duplicate cells diverged: %+v vs %+v", res[0].Estimate, res[1].Estimate)
	}
}

// TestSweepMatchesPerCellEstimate: the acceptance bar for the scheduler —
// every cell of a shared-pool sweep must be value-identical to running
// plan.Estimate cell-by-cell with the same budget and derived base seed
// (the old per-cell-loop semantics).
func TestSweepMatchesPerCellEstimate(t *testing.T) {
	sp, err := CompileSweep(feasibilitySpec(0x5eed))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sp.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range sp.Cells() {
		c := &sp.Cells()[i]
		want, err := c.Plan().Estimate(200,
			WithBaseSeed(c.Config.Seed),
			WithAlmostSafeTarget())
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Estimate != want {
			t.Fatalf("cell %d: sweep %+v != per-cell estimate %+v", i, got[i].Estimate, want)
		}
	}
	// And the whole sweep must reproduce itself exactly.
	again, err := sp.Collect(context.Background(), WithSweepWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Estimate != again[i].Estimate {
			t.Fatalf("cell %d nondeterministic across runs: %+v vs %+v", i, got[i].Estimate, again[i].Estimate)
		}
	}
}

// TestSweepCellPrev: a prior estimate that satisfies the budget must
// answer the cell with zero new trials; a short one must be topped up by
// exactly the marginal trials, continuing its seed sequence.
func TestSweepCellPrev(t *testing.T) {
	spec := SweepSpec{
		Graphs:     []SweepGraph{{Spec: "line:8"}},
		Algorithms: []Algorithm{Flooding},
		Ps:         []float64{0.2},
		Seed:       3,
		Budget:     CellBudget{Trials: 100},
	}
	sp, err := CompileSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	full, err := sp.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if full[0].Estimate.Trials != 100 || full[0].Resumed != 0 {
		t.Fatalf("baseline run off: %+v", full[0])
	}

	// Prior covering the whole budget: zero simulation.
	cached, err := sp.Collect(context.Background(), WithCellPrev(func(c *SweepCell) (Estimate, bool) {
		return full[0].Estimate, true
	}))
	if err != nil {
		t.Fatal(err)
	}
	if cached[0].Estimate != full[0].Estimate || cached[0].Resumed != 100 {
		t.Fatalf("cached cell re-simulated: %+v", cached[0])
	}

	// Short prior (the first 40 trials of the same stream): the top-up
	// must land on the identical final estimate.
	prefix, err := sp.Cells()[0].Plan().Estimate(40, WithBaseSeed(sp.Cells()[0].Config.Seed))
	if err != nil {
		t.Fatal(err)
	}
	refined, err := sp.Collect(context.Background(), WithCellPrev(func(c *SweepCell) (Estimate, bool) {
		return prefix, true
	}))
	if err != nil {
		t.Fatal(err)
	}
	if refined[0].Resumed != 40 {
		t.Fatalf("resumed %d trials, want 40", refined[0].Resumed)
	}
	if refined[0].Estimate != full[0].Estimate {
		t.Fatalf("refinement diverged: %+v vs %+v", refined[0].Estimate, full[0].Estimate)
	}
}

// TestSweepExplicitCells: the Cells escape hatch must honor per-cell
// parameters that co-vary (window constants tied to p) and still derive
// seeds from the sweep seed, ignoring any Config.Seed given.
func TestSweepExplicitCells(t *testing.T) {
	g := Line(8)
	spec := SweepSpec{
		Cells: []Config{
			{Graph: g, Message: []byte("1"), Model: MessagePassing, Fault: Omission, P: 0.3, Algorithm: SimpleOmission, WindowC: 2, Seed: 999},
			{Graph: g, Message: []byte("1"), Model: MessagePassing, Fault: Omission, P: 0.6, Algorithm: SimpleOmission, WindowC: 4, Seed: 999},
		},
		Seed:   11,
		Budget: CellBudget{Trials: 60},
	}
	sp, err := CompileSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	cells := sp.Cells()
	if cells[0].Config.Seed == 999 || cells[1].Config.Seed == 999 {
		t.Fatal("explicit cell seed was not overridden by derivation")
	}
	if cells[0].Config.WindowC != 2 || cells[1].Config.WindowC != 4 {
		t.Fatal("explicit cell parameters lost")
	}
	if _, err := sp.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSweepCancellation: a cancelled context must abort the run with its
// error.
func TestSweepCancellation(t *testing.T) {
	spec := feasibilitySpec(5)
	spec.Budget = CellBudget{Trials: 1 << 20} // far more work than a test should do
	sp, err := CompileSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err = sp.Run(ctx, func(CellResult) {})
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestCompileSweepRejects: structural errors must surface at compile
// time, not mid-run.
func TestCompileSweepRejects(t *testing.T) {
	bad := []SweepSpec{
		{Ps: []float64{0.5}},                                         // no graphs
		{Graphs: []SweepGraph{{Spec: "line:8"}}},                     // no ps
		{Graphs: []SweepGraph{{Spec: "nope:8"}}, Ps: []float64{0.5}}, // bad spec
		{Graphs: []SweepGraph{{Spec: "line:8"}}, Ps: []float64{1.5}}, // p out of range
		{Graphs: []SweepGraph{{Spec: "line:8"}}, Ps: []float64{0.5}, // model mismatch
			Models: []Model{Radio}, Algorithms: []Algorithm{Flooding}},
	}
	for i, spec := range bad {
		if _, err := CompileSweep(spec); err == nil {
			t.Fatalf("case %d: CompileSweep accepted invalid spec", i)
		}
	}
}

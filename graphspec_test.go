package faultcast

import (
	"os"
	"testing"
)

func TestParseGraphValid(t *testing.T) {
	cases := []struct {
		spec string
		n    int
	}{
		{"line:10", 10},
		{"path:5", 5},
		{"ring:6", 6},
		{"star:7", 7},
		{"complete:5", 5},
		{"clique:4", 4},
		{"k2", 2},
		{"twonode", 2},
		{"tree:15", 15},
		{"tree:13:3", 13},
		{"grid:3x4", 12},
		{"torus:3x3", 9},
		{"hypercube:4", 16},
		{"cube:3", 8},
		{"layered:3", 11},
		{"caterpillar:4:2", 12},
		{"gnp:20:0.1", 20},
		{"randtree:9", 9},
		{" LINE:10 ", 10}, // trimming + case folding
	}
	for _, tc := range cases {
		g, err := ParseGraph(tc.spec, 7)
		if err != nil {
			t.Errorf("ParseGraph(%q): %v", tc.spec, err)
			continue
		}
		if g.N() != tc.n {
			t.Errorf("ParseGraph(%q): n=%d, want %d", tc.spec, g.N(), tc.n)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("ParseGraph(%q): invalid graph: %v", tc.spec, err)
		}
	}
}

func TestParseGraphInvalid(t *testing.T) {
	for _, spec := range []string{
		"", "wat:3", "line", "line:x", "line:0", "grid:3", "grid:3x",
		"gnp:10", "gnp:10:2", "caterpillar:3", "torus:axb",
	} {
		if _, err := ParseGraph(spec, 1); err == nil {
			t.Errorf("ParseGraph(%q) accepted", spec)
		}
	}
}

func TestParseGraphFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/g.edges"
	if err := os.WriteFile(path, []byte("# demo\nn 3\n0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := ParseGraph("file:"+path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if _, err := ParseGraph("file:"+dir+"/missing", 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestParseGraphDeterministicSeeds(t *testing.T) {
	a, err := ParseGraph("gnp:30:0.2", 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ParseGraph("gnp:30:0.2", 5)
	c, _ := ParseGraph("gnp:30:0.2", 6)
	if a.M() != b.M() {
		t.Fatal("same seed produced different graphs")
	}
	if a.M() == c.M() {
		t.Log("different seeds coincided on edge count (possible)")
	}
}

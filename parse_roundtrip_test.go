package faultcast

import "testing"

// These property tests pin the Parse*(X.String()) identities for every
// defined enum value. The cluster wire format depends on them: a shard
// request carries its scenario's enums in String() form and the worker
// rebuilds the config with the parsers, so any value that failed to
// round-trip would make every shard of that scenario undispatchable.

func TestParseModelRoundTrip(t *testing.T) {
	for _, m := range []Model{MessagePassing, Radio} {
		got, err := ParseModel(m.String())
		if err != nil {
			t.Errorf("ParseModel(%q): %v", m.String(), err)
		} else if got != m {
			t.Errorf("ParseModel(%q) = %v, want %v", m.String(), got, m)
		}
	}
}

func TestParseFaultRoundTrip(t *testing.T) {
	for _, f := range []Fault{Omission, Malicious, LimitedMalicious} {
		got, err := ParseFault(f.String())
		if err != nil {
			t.Errorf("ParseFault(%q): %v", f.String(), err)
		} else if got != f {
			t.Errorf("ParseFault(%q) = %v, want %v", f.String(), got, f)
		}
	}
}

func TestParseAlgorithmRoundTrip(t *testing.T) {
	for _, a := range []Algorithm{Auto, SimpleOmission, SimpleMalicious, Flooding, Composed, RadioRepeat, TimingBit} {
		got, err := ParseAlgorithm(a.String())
		if err != nil {
			t.Errorf("ParseAlgorithm(%q): %v", a.String(), err)
		} else if got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, want %v", a.String(), got, a)
		}
	}
}

func TestParseAdversaryRoundTrip(t *testing.T) {
	for _, a := range []AdversaryKind{WorstCase, CrashAdv, FlipAdv, NoiseAdv} {
		got, err := ParseAdversary(a.String())
		if err != nil {
			t.Errorf("ParseAdversary(%q): %v", a.String(), err)
		} else if got != a {
			t.Errorf("ParseAdversary(%q) = %v, want %v", a.String(), got, a)
		}
	}
}

// Undefined values must render distinctly (the Stringer fallback) and
// fail to parse rather than alias a defined value.
func TestParseRejectsUndefined(t *testing.T) {
	if _, err := ParseModel(Model(99).String()); err == nil {
		t.Error("undefined Model round-tripped")
	}
	if _, err := ParseFault(Fault(99).String()); err == nil {
		t.Error("undefined Fault round-tripped")
	}
	if _, err := ParseAlgorithm(Algorithm(99).String()); err == nil {
		t.Error("undefined Algorithm round-tripped")
	}
	if _, err := ParseAdversary(AdversaryKind(99).String()); err == nil {
		t.Error("undefined AdversaryKind round-tripped")
	}
}

package faultcast

import (
	"os"
	"testing"

	"faultcast/internal/graph"
)

func TestConfigFingerprintSemantics(t *testing.T) {
	base := Config{
		Graph: Grid(4, 4), Source: 0, Message: []byte("1"),
		Model: MessagePassing, Fault: Omission, P: 0.5, Seed: 7,
	}
	if base.Fingerprint() != base.Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}

	// Engine selection and tracing are observation, not semantics: the
	// engines are proven bit-identical, so the key must not split on them.
	same := base
	same.Concurrent = true
	same.ScalarCore = true
	same.Trace = os.Stderr
	if same.Fingerprint() != base.Fingerprint() {
		t.Error("Concurrent/ScalarCore/Trace changed the fingerprint")
	}

	// A structurally identical graph under a different name hashes equal.
	b := graph.NewBuilder(16)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			v := r*4 + c
			if c+1 < 4 {
				b.AddEdge(v, v+1)
			}
			if r+1 < 4 {
				b.AddEdge(v, v+4)
			}
		}
	}
	renamed := base
	renamed.Graph = b.Build("definitely-not-a-grid")
	if renamed.Fingerprint() != base.Fingerprint() {
		t.Error("graph name changed the fingerprint; keying must be structural")
	}

	// Every semantic field must split the key.
	for name, mutate := range map[string]func(*Config){
		"graph":     func(c *Config) { c.Graph = Grid(4, 5) },
		"source":    func(c *Config) { c.Source = 1 },
		"message":   func(c *Config) { c.Message = []byte("2") },
		"model":     func(c *Config) { c.Model = Radio },
		"fault":     func(c *Config) { c.Fault = Malicious },
		"p":         func(c *Config) { c.P = 0.25 },
		"algorithm": func(c *Config) { c.Algorithm = SimpleOmission },
		"windowc":   func(c *Config) { c.WindowC = 8 },
		"alpha":     func(c *Config) { c.Alpha = 2 },
		"adversary": func(c *Config) { c.Adversary = CrashAdv },
		"seed":      func(c *Config) { c.Seed = 8 },
		"rounds":    func(c *Config) { c.Rounds = 99 },
	} {
		mutated := base
		mutate(&mutated)
		if mutated.Fingerprint() == base.Fingerprint() {
			t.Errorf("mutating %s did not change the fingerprint", name)
		}
	}
}

func TestPlanKeyMatchesConfigFingerprint(t *testing.T) {
	cfg := Config{
		Graph: Line(12), Source: 0, Message: []byte("1"),
		Model: MessagePassing, Fault: Omission, P: 0.4, Seed: 3,
	}
	plan, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Key() != cfg.Fingerprint() {
		t.Fatalf("Plan.Key %s != Config.Fingerprint %s", plan.Key(), cfg.Fingerprint())
	}
}

// TestEstimateFromMatchesEstimate pins the serving layer's refinement
// contract: topping an estimate up to a larger budget visits exactly the
// seed sequence a from-scratch estimate of the full budget would.
func TestEstimateFromMatchesEstimate(t *testing.T) {
	cfg := Config{
		Graph: Line(16), Source: 0, Message: []byte("1"),
		Model: MessagePassing, Fault: Omission, P: 0.3, Seed: 1,
	}
	plan, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := plan.Estimate(256)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Trials != 256 {
		t.Fatalf("partial ran %d trials, want 256", partial.Trials)
	}
	refined, err := plan.EstimateFrom(partial, 1024)
	if err != nil {
		t.Fatal(err)
	}
	full, err := plan.Estimate(1024)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Trials != full.Trials || refined.Succeeds != full.Succeeds {
		t.Fatalf("refined %d/%d != full %d/%d",
			refined.Succeeds, refined.Trials, full.Succeeds, full.Trials)
	}

	// An estimate that already covers the budget is returned unchanged —
	// zero simulation.
	again, err := plan.EstimateFrom(full, 512)
	if err != nil {
		t.Fatal(err)
	}
	if again != full {
		t.Fatalf("EstimateFrom with a satisfied budget reran trials: %+v != %+v", again, full)
	}
}

module faultcast

go 1.24

package faultcast

import (
	"strings"
	"testing"
)

// laneScenarios enumerates one configuration per (algorithm × model ×
// fault × adversary) combination that has a lane lowering. Every entry
// must produce per-trial verdicts, estimates, stop decisions, and shard
// tallies bit-identical to the scalar and bitset cores.
func laneScenarios() map[string]Config {
	msg := []byte("hi") // non-bit so WorstCase lowers to Flip
	return map[string]Config{
		"flooding/omission": {
			Graph: Grid(3, 4), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Omission, P: 0.35,
			Algorithm: Flooding,
		},
		"flooding/malicious/crash": {
			Graph: Line(9), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Malicious, P: 0.3,
			Algorithm: Flooding, Adversary: CrashAdv,
		},
		"flooding/malicious/flip": {
			Graph: KaryTree(2, 10), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Malicious, P: 0.3,
			Algorithm: Flooding, Adversary: FlipAdv,
		},
		"flooding/limited/worst-nonbit": {
			Graph: Line(8), Source: 0, Message: msg,
			Model: MessagePassing, Fault: LimitedMalicious, P: 0.25,
			Algorithm: Flooding, Adversary: WorstCase,
		},
		"simple-omission/mp": {
			Graph: Line(7), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Omission, P: 0.45, WindowC: 1,
			Algorithm: SimpleOmission,
		},
		"simple-omission/radio": {
			Graph: Star(6), Source: 1, Message: []byte("1"),
			Model: Radio, Fault: Omission, P: 0.5, WindowC: 1,
			Algorithm: SimpleOmission,
		},
		"simple-omission/malicious/crash": {
			Graph: Ring(8), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Malicious, P: 0.3, WindowC: 1,
			Algorithm: SimpleOmission, Adversary: CrashAdv,
		},
		"simple-malicious/mp/flip": {
			Graph: Line(6), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Malicious, P: 0.35, WindowC: 2,
			Algorithm: SimpleMalicious, Adversary: FlipAdv,
		},
		"simple-malicious/mp/crash": {
			Graph: KaryTree(2, 9), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Malicious, P: 0.4, WindowC: 2,
			Algorithm: SimpleMalicious, Adversary: CrashAdv,
		},
		"simple-malicious/mp/worst-nonbit": {
			Graph: Grid(2, 4), Source: 0, Message: msg,
			Model: MessagePassing, Fault: Malicious, P: 0.3, WindowC: 2,
			Algorithm: SimpleMalicious, Adversary: WorstCase,
		},
		"simple-malicious/radio/flip": {
			Graph: Star(7), Source: 1, Message: []byte("1"),
			Model: Radio, Fault: Malicious, P: 0.25, WindowC: 2,
			Algorithm: SimpleMalicious, Adversary: FlipAdv,
		},
		"simple-malicious/limited/crash": {
			Graph: Line(6), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: LimitedMalicious, P: 0.3, WindowC: 2,
			Algorithm: SimpleMalicious, Adversary: CrashAdv,
		},
		"composed/limited/flip": {
			Graph: Line(9), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: LimitedMalicious, P: 0.2,
			Algorithm: Composed, Adversary: FlipAdv,
		},
		"composed/limited/crash": {
			Graph: KaryTree(2, 7), Source: 0, Message: msg,
			Model: MessagePassing, Fault: LimitedMalicious, P: 0.15,
			Algorithm: Composed, Adversary: CrashAdv,
		},
		"radio-repeat/omission": {
			Graph: Layered(3), Source: 0, Message: []byte("1"),
			Model: Radio, Fault: Omission, P: 0.4, WindowC: 1,
			Algorithm: RadioRepeat,
		},
		"radio-repeat/malicious/flip": {
			Graph: Layered(3), Source: 0, Message: []byte("1"),
			Model: Radio, Fault: Malicious, P: 0.3, WindowC: 2,
			Algorithm: RadioRepeat, Adversary: FlipAdv,
		},
		"radio-repeat/malicious/crash": {
			Graph: Star(8), Source: 1, Message: []byte("1"),
			Model: Radio, Fault: Malicious, P: 0.35, WindowC: 2,
			Algorithm: RadioRepeat, Adversary: CrashAdv,
		},
	}
}

func withCore(cfg Config, core Core) Config {
	cfg.Core = core
	return cfg
}

// TestLanesPerTrialIdentity pins the tentpole contract at per-trial
// granularity: a shard tally with batch 1 exposes every individual trial
// verdict, and the lane-transposed core must match the bitset and scalar
// cores verdict for verdict — across full and partial lane blocks (70
// trials = one full 64-wide block plus a 6-trial tail).
func TestLanesPerTrialIdentity(t *testing.T) {
	const trials = 70
	for name, cfg := range laneScenarios() {
		lanes, err := Compile(withCore(cfg, CoreLanes))
		if err != nil {
			t.Fatalf("%s: compile lanes: %v", name, err)
		}
		if lanes.newBlockMaker() == nil {
			t.Fatalf("%s: lane plan has no block maker", name)
		}
		bitset, err := Compile(withCore(cfg, CoreBitset))
		if err != nil {
			t.Fatalf("%s: compile bitset: %v", name, err)
		}
		scalar, err := Compile(withCore(cfg, CoreScalar))
		if err != nil {
			t.Fatalf("%s: compile scalar: %v", name, err)
		}
		got := lanes.TallyShard(cfg.Seed+11, trials, 1, 4)
		wantB := bitset.TallyShard(cfg.Seed+11, trials, 1, 4)
		wantS := scalar.TallyShard(cfg.Seed+11, trials, 1, 4)
		for i := 0; i < trials; i++ {
			if got.Successes[i] != wantB.Successes[i] || got.Successes[i] != wantS.Successes[i] {
				t.Fatalf("%s: trial %d: lanes=%d bitset=%d scalar=%d",
					name, i, got.Successes[i], wantB.Successes[i], wantS.Successes[i])
			}
		}
	}
}

// TestLanesEstimateIdentity pins the estimation surface: with an early
// stopping rule the executed trial count, the success count, and hence
// every stop decision must be identical across cores, and the cached-
// estimate refinement path (EstimateFrom) must continue a bitset-core
// stream bit-identically on the lane core.
func TestLanesEstimateIdentity(t *testing.T) {
	for name, cfg := range laneScenarios() {
		lanes, err := Compile(withCore(cfg, CoreLanes))
		if err != nil {
			t.Fatalf("%s: compile lanes: %v", name, err)
		}
		bitset, err := Compile(withCore(cfg, CoreBitset))
		if err != nil {
			t.Fatalf("%s: compile bitset: %v", name, err)
		}
		opts := []EstimateOption{WithTarget(0.85), WithBaseSeed(cfg.Seed + 5)}
		got, err := lanes.Estimate(300, opts...)
		if err != nil {
			t.Fatalf("%s: lanes estimate: %v", name, err)
		}
		want, err := bitset.Estimate(300, opts...)
		if err != nil {
			t.Fatalf("%s: bitset estimate: %v", name, err)
		}
		if got.Trials != want.Trials || got.Succeeds != want.Succeeds {
			t.Fatalf("%s: estimate diverged: lanes %d/%d, bitset %d/%d",
				name, got.Succeeds, got.Trials, want.Succeeds, want.Trials)
		}

		// Refinement: top an 80-trial bitset estimate up to 200 on lanes;
		// the combined stream must equal a straight 200-trial run.
		prev, err := bitset.Estimate(80, WithBaseSeed(cfg.Seed+5))
		if err != nil {
			t.Fatalf("%s: bitset prefix: %v", name, err)
		}
		resumed, err := lanes.EstimateFrom(prev, 200, WithBaseSeed(cfg.Seed+5))
		if err != nil {
			t.Fatalf("%s: lanes resume: %v", name, err)
		}
		full, err := bitset.Estimate(200, WithBaseSeed(cfg.Seed+5))
		if err != nil {
			t.Fatalf("%s: bitset full: %v", name, err)
		}
		if resumed.Trials != full.Trials || resumed.Succeeds != full.Succeeds {
			t.Fatalf("%s: refinement diverged: resumed %d/%d, full %d/%d",
				name, resumed.Succeeds, resumed.Trials, full.Succeeds, full.Trials)
		}
	}
}

// TestLanesShardTallyIdentity pins the cluster shard protocol: per-batch
// tallies (the wire unit coordinators merge and replay) must be identical
// whichever core computes them, including blocks straddling bucket
// boundaries (batch 48 vs block width 64).
func TestLanesShardTallyIdentity(t *testing.T) {
	for name, cfg := range laneScenarios() {
		lanes, err := Compile(withCore(cfg, CoreLanes))
		if err != nil {
			t.Fatalf("%s: compile lanes: %v", name, err)
		}
		bitset, err := Compile(withCore(cfg, CoreBitset))
		if err != nil {
			t.Fatalf("%s: compile bitset: %v", name, err)
		}
		got := lanes.TallyShard(cfg.Seed+101, 150, 48, 3)
		want := bitset.TallyShard(cfg.Seed+101, 150, 48, 3)
		if got.Trials != want.Trials || got.Batch != want.Batch || len(got.Successes) != len(want.Successes) {
			t.Fatalf("%s: tally shape diverged: %+v vs %+v", name, got, want)
		}
		for i := range got.Successes {
			if got.Successes[i] != want.Successes[i] {
				t.Fatalf("%s: bucket %d: lanes=%d bitset=%d", name, i, got.Successes[i], want.Successes[i])
			}
		}
	}
}

// TestCoreLanesUnsupported pins the Compile-time gate: scenarios with no
// two-symbol lane lowering must fail under Core=lanes (and silently fall
// back to the bitset core under the default CoreAuto).
func TestCoreLanesUnsupported(t *testing.T) {
	base := Config{
		Graph: Line(6), Source: 0, Message: []byte("1"),
		Model: MessagePassing, Fault: Malicious, P: 0.3,
		Algorithm: SimpleMalicious,
	}
	cases := map[string]Config{
		"noise adversary": func() Config { c := base; c.Adversary = NoiseAdv; return c }(),
		"equivocator":     func() Config { c := base; c.Adversary = WorstCase; return c }(), // bit message
		"default message": func() Config { c := base; c.Message = []byte("0"); c.Adversary = CrashAdv; return c }(),
		"timing bit": {
			Graph: Complete(2), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: LimitedMalicious, P: 0.3,
			Algorithm: TimingBit,
		},
		"concurrent": func() Config { c := base; c.Adversary = CrashAdv; c.Concurrent = true; return c }(),
	}
	for name, cfg := range cases {
		cfg.Core = CoreLanes
		if _, err := Compile(cfg); err == nil {
			t.Errorf("%s: Core=lanes compiled but the scenario has no lane lowering", name)
		}
		// CoreAuto must still compile (falling back to the round engine) …
		cfg.Core = CoreAuto
		plan, err := Compile(cfg)
		if err != nil {
			t.Fatalf("%s: CoreAuto: %v", name, err)
		}
		// … without a lane block maker (concurrent keeps its lowering but
		// must not use it).
		if plan.newBlockMaker() != nil {
			t.Errorf("%s: CoreAuto plan unexpectedly built a lane block maker", name)
		}
	}
}

// TestCoreExcludedFromFingerprint pins the cache-key contract: the engine
// selectors cannot change a result, so they must not change the key.
func TestCoreExcludedFromFingerprint(t *testing.T) {
	cfg := laneScenarios()["composed/limited/flip"]
	base := cfg.Fingerprint()
	for _, core := range []Core{CoreBitset, CoreScalar, CoreLanes} {
		if got := withCore(cfg, core).Fingerprint(); got != base {
			t.Fatalf("Core=%v changed the fingerprint", core)
		}
	}
	if !strings.Contains(cfg.CanonicalString(), "algo:") {
		t.Fatal("canonical string lost its shape")
	}
}

package faultcast

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// laneScenarios enumerates one configuration per (algorithm × model ×
// fault × adversary) combination that has a lane lowering. Every entry
// must produce per-trial verdicts, estimates, stop decisions, and shard
// tallies bit-identical to the scalar and bitset cores.
func laneScenarios() map[string]Config {
	msg := []byte("hi") // non-bit so WorstCase lowers to Flip
	return map[string]Config{
		"flooding/omission": {
			Graph: Grid(3, 4), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Omission, P: 0.35,
			Algorithm: Flooding,
		},
		"flooding/malicious/crash": {
			Graph: Line(9), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Malicious, P: 0.3,
			Algorithm: Flooding, Adversary: CrashAdv,
		},
		"flooding/malicious/flip": {
			Graph: KaryTree(2, 10), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Malicious, P: 0.3,
			Algorithm: Flooding, Adversary: FlipAdv,
		},
		"flooding/limited/worst-nonbit": {
			Graph: Line(8), Source: 0, Message: msg,
			Model: MessagePassing, Fault: LimitedMalicious, P: 0.25,
			Algorithm: Flooding, Adversary: WorstCase,
		},
		"simple-omission/mp": {
			Graph: Line(7), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Omission, P: 0.45, WindowC: 1,
			Algorithm: SimpleOmission,
		},
		"simple-omission/radio": {
			Graph: Star(6), Source: 1, Message: []byte("1"),
			Model: Radio, Fault: Omission, P: 0.5, WindowC: 1,
			Algorithm: SimpleOmission,
		},
		"simple-omission/malicious/crash": {
			Graph: Ring(8), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Malicious, P: 0.3, WindowC: 1,
			Algorithm: SimpleOmission, Adversary: CrashAdv,
		},
		"simple-malicious/mp/flip": {
			Graph: Line(6), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Malicious, P: 0.35, WindowC: 2,
			Algorithm: SimpleMalicious, Adversary: FlipAdv,
		},
		"simple-malicious/mp/crash": {
			Graph: KaryTree(2, 9), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Malicious, P: 0.4, WindowC: 2,
			Algorithm: SimpleMalicious, Adversary: CrashAdv,
		},
		"simple-malicious/mp/worst-nonbit": {
			Graph: Grid(2, 4), Source: 0, Message: msg,
			Model: MessagePassing, Fault: Malicious, P: 0.3, WindowC: 2,
			Algorithm: SimpleMalicious, Adversary: WorstCase,
		},
		"simple-malicious/radio/flip": {
			Graph: Star(7), Source: 1, Message: []byte("1"),
			Model: Radio, Fault: Malicious, P: 0.25, WindowC: 2,
			Algorithm: SimpleMalicious, Adversary: FlipAdv,
		},
		"simple-malicious/limited/crash": {
			Graph: Line(6), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: LimitedMalicious, P: 0.3, WindowC: 2,
			Algorithm: SimpleMalicious, Adversary: CrashAdv,
		},
		"composed/limited/flip": {
			Graph: Line(9), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: LimitedMalicious, P: 0.2,
			Algorithm: Composed, Adversary: FlipAdv,
		},
		"composed/limited/crash": {
			Graph: KaryTree(2, 7), Source: 0, Message: msg,
			Model: MessagePassing, Fault: LimitedMalicious, P: 0.15,
			Algorithm: Composed, Adversary: CrashAdv,
		},
		"radio-repeat/omission": {
			Graph: Layered(3), Source: 0, Message: []byte("1"),
			Model: Radio, Fault: Omission, P: 0.4, WindowC: 1,
			Algorithm: RadioRepeat,
		},
		"radio-repeat/malicious/flip": {
			Graph: Layered(3), Source: 0, Message: []byte("1"),
			Model: Radio, Fault: Malicious, P: 0.3, WindowC: 2,
			Algorithm: RadioRepeat, Adversary: FlipAdv,
		},
		"radio-repeat/malicious/crash": {
			Graph: Star(8), Source: 1, Message: []byte("1"),
			Model: Radio, Fault: Malicious, P: 0.35, WindowC: 2,
			Algorithm: RadioRepeat, Adversary: CrashAdv,
		},
		// Noise adversary: two symbols when the message is "1" (the noise
		// alphabet {"0","1"} is {default, M}), three when it is not.
		"flooding/malicious/noise-bit": {
			Graph: KaryTree(2, 10), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Malicious, P: 0.3,
			Algorithm: Flooding, Adversary: NoiseAdv,
		},
		"flooding/limited/noise-3sym": {
			Graph: Grid(3, 3), Source: 0, Message: msg,
			Model: MessagePassing, Fault: LimitedMalicious, P: 0.4,
			Algorithm: Flooding, Adversary: NoiseAdv,
		},
		"simple-malicious/mp/noise-3sym": {
			Graph: Line(7), Source: 0, Message: msg,
			Model: MessagePassing, Fault: Malicious, P: 0.35, WindowC: 2,
			Algorithm: SimpleMalicious, Adversary: NoiseAdv,
		},
		"simple-malicious/radio/noise-bit": {
			Graph: Star(7), Source: 1, Message: []byte("1"),
			Model: Radio, Fault: Malicious, P: 0.3, WindowC: 2,
			Algorithm: SimpleMalicious, Adversary: NoiseAdv,
		},
		"simple-omission/malicious/noise-bit": {
			Graph: Ring(8), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Malicious, P: 0.3, WindowC: 1,
			Algorithm: SimpleOmission, Adversary: NoiseAdv,
		},
		"radio-repeat/malicious/noise-3sym": {
			Graph: Layered(3), Source: 0, Message: msg,
			Model: Radio, Fault: Malicious, P: 0.3, WindowC: 2,
			Algorithm: RadioRepeat, Adversary: NoiseAdv,
		},
		// Worst-case on a bit message over message passing is the
		// source-only equivocator; P > 1/2 exercises its slowing draw.
		"simple-malicious/mp/equivocator": {
			Graph: KaryTree(2, 9), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Malicious, P: 0.35, WindowC: 2,
			Algorithm: SimpleMalicious, Adversary: WorstCase,
		},
		"simple-malicious/mp/equivocator-slow": {
			Graph: Line(6), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Malicious, P: 0.7, WindowC: 2,
			Algorithm: SimpleMalicious, Adversary: WorstCase,
		},
		"flooding/malicious/equivocator": {
			Graph: Grid(2, 4), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Malicious, P: 0.3,
			Algorithm: Flooding, Adversary: WorstCase,
		},
		"composed/limited/equivocator": {
			Graph: KaryTree(2, 7), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: LimitedMalicious, P: 0.2,
			Algorithm: Composed, Adversary: WorstCase,
		},
		// The timing protocol is content-free, so every payload-rewriting
		// adversary lowers to keep-the-targets corruption — including on
		// the message "0", where the content protocols are gated.
		"timing/omission/bit1": {
			Graph: Complete(2), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: Omission, P: 0.35, WindowC: 8,
			Algorithm: TimingBit,
		},
		"timing/limited/crash-bit1": {
			Graph: Complete(2), Source: 0, Message: []byte("1"),
			Model: MessagePassing, Fault: LimitedMalicious, P: 0.4, WindowC: 8,
			Algorithm: TimingBit, Adversary: CrashAdv,
		},
		"timing/limited/worst-bit0": {
			Graph: Complete(2), Source: 1, Message: []byte("0"),
			Model: MessagePassing, Fault: LimitedMalicious, P: 0.45, WindowC: 8,
			Algorithm: TimingBit, Adversary: WorstCase,
		},
		"timing/malicious/noise-bit0": {
			Graph: Complete(2), Source: 0, Message: []byte("0"),
			Model: MessagePassing, Fault: Malicious, P: 0.3, WindowC: 8,
			Algorithm: TimingBit, Adversary: NoiseAdv,
		},
	}
}

func withCore(cfg Config, core Core) Config {
	cfg.Core = core
	return cfg
}

// TestLanesPerTrialIdentity pins the tentpole contract at per-trial
// granularity: a shard tally with batch 1 exposes every individual trial
// verdict, and the lane-transposed core must match the bitset and scalar
// cores verdict for verdict — across full and partial lane blocks (70
// trials = one full 64-wide block plus a 6-trial tail).
func TestLanesPerTrialIdentity(t *testing.T) {
	const trials = 70
	for name, cfg := range laneScenarios() {
		lanes, err := Compile(withCore(cfg, CoreLanes))
		if err != nil {
			t.Fatalf("%s: compile lanes: %v", name, err)
		}
		if lanes.newBlockMaker() == nil {
			t.Fatalf("%s: lane plan has no block maker", name)
		}
		bitset, err := Compile(withCore(cfg, CoreBitset))
		if err != nil {
			t.Fatalf("%s: compile bitset: %v", name, err)
		}
		scalar, err := Compile(withCore(cfg, CoreScalar))
		if err != nil {
			t.Fatalf("%s: compile scalar: %v", name, err)
		}
		got := lanes.TallyShard(cfg.Seed+11, trials, 1, 4)
		wantB := bitset.TallyShard(cfg.Seed+11, trials, 1, 4)
		wantS := scalar.TallyShard(cfg.Seed+11, trials, 1, 4)
		for i := 0; i < trials; i++ {
			if got.Successes[i] != wantB.Successes[i] || got.Successes[i] != wantS.Successes[i] {
				t.Fatalf("%s: trial %d: lanes=%d bitset=%d scalar=%d",
					name, i, got.Successes[i], wantB.Successes[i], wantS.Successes[i])
			}
		}
	}
}

// TestLanesEstimateIdentity pins the estimation surface: with an early
// stopping rule the executed trial count, the success count, and hence
// every stop decision must be identical across cores, and the cached-
// estimate refinement path (EstimateFrom) must continue a bitset-core
// stream bit-identically on the lane core.
func TestLanesEstimateIdentity(t *testing.T) {
	for name, cfg := range laneScenarios() {
		lanes, err := Compile(withCore(cfg, CoreLanes))
		if err != nil {
			t.Fatalf("%s: compile lanes: %v", name, err)
		}
		bitset, err := Compile(withCore(cfg, CoreBitset))
		if err != nil {
			t.Fatalf("%s: compile bitset: %v", name, err)
		}
		opts := []EstimateOption{WithTarget(0.85), WithBaseSeed(cfg.Seed + 5)}
		got, err := lanes.Estimate(300, opts...)
		if err != nil {
			t.Fatalf("%s: lanes estimate: %v", name, err)
		}
		want, err := bitset.Estimate(300, opts...)
		if err != nil {
			t.Fatalf("%s: bitset estimate: %v", name, err)
		}
		if got.Trials != want.Trials || got.Succeeds != want.Succeeds {
			t.Fatalf("%s: estimate diverged: lanes %d/%d, bitset %d/%d",
				name, got.Succeeds, got.Trials, want.Succeeds, want.Trials)
		}

		// Refinement: top an 80-trial bitset estimate up to 200 on lanes;
		// the combined stream must equal a straight 200-trial run.
		prev, err := bitset.Estimate(80, WithBaseSeed(cfg.Seed+5))
		if err != nil {
			t.Fatalf("%s: bitset prefix: %v", name, err)
		}
		resumed, err := lanes.EstimateFrom(prev, 200, WithBaseSeed(cfg.Seed+5))
		if err != nil {
			t.Fatalf("%s: lanes resume: %v", name, err)
		}
		full, err := bitset.Estimate(200, WithBaseSeed(cfg.Seed+5))
		if err != nil {
			t.Fatalf("%s: bitset full: %v", name, err)
		}
		if resumed.Trials != full.Trials || resumed.Succeeds != full.Succeeds {
			t.Fatalf("%s: refinement diverged: resumed %d/%d, full %d/%d",
				name, resumed.Succeeds, resumed.Trials, full.Succeeds, full.Trials)
		}
	}
}

// memTallyStore is the in-memory TallyStore the refinement test writes
// through: a map from (plan key, base seed, batch) to a contiguous bucket
// sequence, with the same append-at-end / supersede-from-boundary
// contract the disk store implements.
type memTallyStore struct {
	mu sync.Mutex
	m  map[string][]TallyBucket
}

func (s *memTallyStore) streamKey(planKey string, baseSeed uint64, batch int) string {
	return fmt.Sprintf("%s|%d|%d", planKey, baseSeed, batch)
}

func (s *memTallyStore) LoadTally(planKey string, baseSeed uint64, batch int) ([]TallyBucket, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]TallyBucket(nil), s.m[s.streamKey(planKey, baseSeed, batch)]...), nil
}

func (s *memTallyStore) AppendTally(planKey string, baseSeed uint64, batch int, start int, buckets []TallyBucket) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string][]TallyBucket)
	}
	k := s.streamKey(planKey, baseSeed, batch)
	cur := s.m[k]
	pos, i := 0, 0
	for i < len(cur) && pos < start {
		pos += cur[i].Trials
		i++
	}
	if pos != start {
		return fmt.Errorf("append at trial %d does not land on a stored bucket boundary", start)
	}
	s.m[k] = append(append([]TallyBucket(nil), cur[:i]...), buckets...)
	return nil
}

// TestLanesStoreBackedRefinementIdentity pins the durable-store path
// across cores: a bitset-core run persists a partial prefix, the lane
// core refines from that store to the full budget, and the result must be
// bit-identical to a cold full-budget bitset run.
func TestLanesStoreBackedRefinementIdentity(t *testing.T) {
	for name, cfg := range laneScenarios() {
		lanes, err := Compile(withCore(cfg, CoreLanes))
		if err != nil {
			t.Fatalf("%s: compile lanes: %v", name, err)
		}
		bitset, err := Compile(withCore(cfg, CoreBitset))
		if err != nil {
			t.Fatalf("%s: compile bitset: %v", name, err)
		}
		opts := []EstimateOption{WithBaseSeed(cfg.Seed + 3)}
		cold, err := bitset.Estimate(200, opts...)
		if err != nil {
			t.Fatalf("%s: cold bitset: %v", name, err)
		}
		st := &memTallyStore{}
		if _, err := bitset.Estimate(90, WithBaseSeed(cfg.Seed+3), WithTallyStore(st)); err != nil {
			t.Fatalf("%s: bitset store prefix: %v", name, err)
		}
		var resumed int
		got, err := lanes.Estimate(200, WithBaseSeed(cfg.Seed+3), WithTallyStore(st),
			WithResumeReport(func(n int) { resumed = n }))
		if err != nil {
			t.Fatalf("%s: lanes store refine: %v", name, err)
		}
		if !reflect.DeepEqual(got, cold) {
			t.Fatalf("%s: store-backed lane refinement diverged: %+v != cold %+v", name, got, cold)
		}
		if resumed < 32 {
			t.Fatalf("%s: lane refinement resumed only %d stored trials", name, resumed)
		}
	}
}

// TestLanesShardTallyIdentity pins the cluster shard protocol: per-batch
// tallies (the wire unit coordinators merge and replay) must be identical
// whichever core computes them, including blocks straddling bucket
// boundaries (batch 48 vs block width 64).
func TestLanesShardTallyIdentity(t *testing.T) {
	for name, cfg := range laneScenarios() {
		lanes, err := Compile(withCore(cfg, CoreLanes))
		if err != nil {
			t.Fatalf("%s: compile lanes: %v", name, err)
		}
		bitset, err := Compile(withCore(cfg, CoreBitset))
		if err != nil {
			t.Fatalf("%s: compile bitset: %v", name, err)
		}
		got := lanes.TallyShard(cfg.Seed+101, 150, 48, 3)
		want := bitset.TallyShard(cfg.Seed+101, 150, 48, 3)
		if got.Trials != want.Trials || got.Batch != want.Batch || len(got.Successes) != len(want.Successes) {
			t.Fatalf("%s: tally shape diverged: %+v vs %+v", name, got, want)
		}
		for i := range got.Successes {
			if got.Successes[i] != want.Successes[i] {
				t.Fatalf("%s: bucket %d: lanes=%d bitset=%d", name, i, got.Successes[i], want.Successes[i])
			}
		}
	}
}

// TestCoreLanesUnsupported pins the Compile-time gate for the shapes that
// remain outside the lane lowering: each must fail under Core=lanes with
// an error naming the specific blocking feature, and silently fall back
// to the round engine under the default CoreAuto.
func TestCoreLanesUnsupported(t *testing.T) {
	base := Config{
		Graph: Line(6), Source: 0, Message: []byte("1"),
		Model: MessagePassing, Fault: Malicious, P: 0.3,
		Algorithm: SimpleMalicious,
	}
	cases := map[string]struct {
		cfg  Config
		want string
	}{
		"default message": {
			cfg:  func() Config { c := base; c.Message = []byte("0"); c.Adversary = CrashAdv; return c }(),
			want: "default symbol",
		},
		"radio star": {
			cfg: Config{
				Graph: Layered(3), Source: 0, Message: []byte("1"),
				Model: Radio, Fault: Malicious, P: 0.3, WindowC: 2,
				Algorithm: RadioRepeat, Adversary: WorstCase,
			},
			want: "out of turn",
		},
		"concurrent": {
			cfg:  func() Config { c := base; c.Adversary = CrashAdv; c.Concurrent = true; return c }(),
			want: "Concurrent",
		},
	}
	for name, tc := range cases {
		cfg := tc.cfg
		cfg.Core = CoreLanes
		_, err := Compile(cfg)
		if err == nil {
			t.Errorf("%s: Core=lanes compiled but the scenario has no lane lowering", name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Core=lanes error %q does not name the blocking feature %q", name, err, tc.want)
		}
		// CoreAuto must still compile (falling back to the round engine) …
		cfg.Core = CoreAuto
		plan, err := Compile(cfg)
		if err != nil {
			t.Fatalf("%s: CoreAuto: %v", name, err)
		}
		// … without a lane block maker (concurrent keeps its lowering but
		// must not use it).
		if plan.newBlockMaker() != nil {
			t.Errorf("%s: CoreAuto plan unexpectedly built a lane block maker", name)
		}
	}
}

// TestCoreLanesErrorNamesFeature walks every gated shape and checks the
// Core=lanes compile error names the unsupported feature, table-driven
// over the gate reasons buildLaneSpec can emit.
func TestCoreLanesErrorNamesFeature(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{
			name: "flooding default message",
			cfg: Config{
				Graph: Line(5), Source: 0, Message: []byte("0"),
				Model: MessagePassing, Fault: Omission, P: 0.3,
				Algorithm: Flooding,
			},
			want: `message "0" is the default symbol`,
		},
		{
			name: "simple-omission default message",
			cfg: Config{
				Graph: Line(5), Source: 0, Message: []byte("0"),
				Model: MessagePassing, Fault: Omission, P: 0.3, WindowC: 1,
				Algorithm: SimpleOmission,
			},
			want: "default symbol",
		},
		{
			name: "composed default message",
			cfg: Config{
				Graph: Line(5), Source: 0, Message: []byte("0"),
				Model: MessagePassing, Fault: LimitedMalicious, P: 0.2,
				Algorithm: Composed, Adversary: CrashAdv,
			},
			want: "default symbol",
		},
		{
			name: "radio worst-case star",
			cfg: Config{
				Graph: Star(6), Source: 1, Message: []byte("1"),
				Model: Radio, Fault: Malicious, P: 0.3, WindowC: 2,
				Algorithm: SimpleMalicious, Adversary: WorstCase,
			},
			want: "out of turn",
		},
	}
	for _, tc := range cases {
		cfg := tc.cfg
		cfg.Core = CoreLanes
		_, err := Compile(cfg)
		if err == nil {
			t.Errorf("%s: expected a Core=lanes compile error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

// TestCoreExcludedFromFingerprint pins the cache-key contract: the engine
// selectors cannot change a result, so they must not change the key.
func TestCoreExcludedFromFingerprint(t *testing.T) {
	cfg := laneScenarios()["composed/limited/flip"]
	base := cfg.Fingerprint()
	for _, core := range []Core{CoreBitset, CoreScalar, CoreLanes} {
		if got := withCore(cfg, core).Fingerprint(); got != base {
			t.Fatalf("Core=%v changed the fingerprint", core)
		}
	}
	if !strings.Contains(cfg.CanonicalString(), "algo:") {
		t.Fatal("canonical string lost its shape")
	}
}

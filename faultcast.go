package faultcast

import (
	"fmt"

	"faultcast/internal/graph"
	"faultcast/internal/rng"
	"faultcast/internal/stat"
)

// Graph is an undirected network topology (alias of the internal graph
// type, so all of its methods — N, M, Degree, MaxDegree, BFS, Radius,
// Validate, WriteDOT, ... — are available to callers).
type Graph = graph.Graph

// Graph constructors for the families used throughout the paper.
var (
	// Line returns the path graph; Lemmas 3.1/3.2 are line results.
	Line = graph.Line
	// Ring returns the cycle graph.
	Ring = graph.Ring
	// Star returns a star with center 0; the extremal graph for the radio
	// malicious threshold (Theorem 2.4).
	Star = graph.Star
	// Complete returns K_n.
	Complete = graph.Complete
	// KaryTree returns the complete k-ary tree in heap layout.
	KaryTree = graph.KaryTree
	// Grid returns the rows×cols grid.
	Grid = graph.Grid
	// Torus returns the rows×cols torus.
	Torus = graph.Torus
	// Hypercube returns the d-dimensional hypercube.
	Hypercube = graph.Hypercube
	// Layered returns the three-layer radio lower-bound graph G_m of
	// Section 3 (n = 2^m + m).
	Layered = graph.Layered
	// TwoNode returns K2.
	TwoNode = graph.TwoNode
	// Caterpillar returns a spine path with legs leaves per spine vertex.
	Caterpillar = graph.Caterpillar
)

// RandomTree returns a random labeled tree on n vertices (deterministic in
// seed).
func RandomTree(n int, seed uint64) *Graph {
	return graph.RandomTree(n, rng.New(seed))
}

// GNP returns a connected Erdős–Rényi-style random graph (deterministic in
// seed; a random spanning tree guarantees connectivity).
func GNP(n int, p float64, seed uint64) *Graph {
	return graph.GNP(n, p, rng.New(seed))
}

// Model selects the communication model.
type Model int

const (
	// MessagePassing: a node may send distinct messages to all neighbors
	// each step.
	MessagePassing Model = iota
	// Radio: one transmission per step, heard only by neighbors with
	// exactly one transmitting neighbor; collisions read as silence.
	Radio
)

func (m Model) String() string {
	switch m {
	case MessagePassing:
		return "message-passing"
	case Radio:
		return "radio"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Fault selects the failure semantics.
type Fault int

const (
	// Omission: a faulty transmitter is silent for the step.
	Omission Fault = iota
	// Malicious: an adaptive adversary drives faulty transmitters, and may
	// transmit even when the algorithm says to stay silent.
	Malicious
	// LimitedMalicious: the adversary may alter or drop intended
	// transmissions but cannot make a silent node speak.
	LimitedMalicious
)

func (f Fault) String() string {
	switch f {
	case Omission:
		return "omission"
	case Malicious:
		return "malicious"
	case LimitedMalicious:
		return "limited-malicious"
	default:
		return fmt.Sprintf("Fault(%d)", int(f))
	}
}

// RadioThreshold returns p*, the unique solution of p = (1−p)^(Δ+1): the
// feasibility threshold for malicious failures in the radio model on
// graphs of maximum degree Δ (Theorem 2.4).
func RadioThreshold(maxDegree int) float64 {
	return stat.RadioThreshold(maxDegree)
}

// Threshold returns the supremum of failure probabilities p for which
// almost-safe broadcasting is feasible in the given scenario on graphs of
// maximum degree maxDegree (the paper's feasibility dichotomy):
//
//   - omission, either model: 1 (any p < 1 works; Theorem 2.1);
//   - malicious, message passing: 1/2 (Theorems 2.2/2.3);
//   - malicious, radio: the fixed point of p = (1−p)^(Δ+1) (Theorem 2.4);
//   - limited malicious, message passing: 1 on bounded topologies via
//     timing protocols (§2.2.2) and 1/2 for the content-based algorithms
//     of Theorem 3.2 — Threshold reports 1, the information-theoretic
//     bound.
func Threshold(model Model, fault Fault, maxDegree int) float64 {
	switch fault {
	case Omission:
		return 1
	case LimitedMalicious:
		if model == Radio {
			return RadioThreshold(maxDegree) // conservatively, the full-malicious bound
		}
		return 1
	case Malicious:
		if model == Radio {
			return RadioThreshold(maxDegree)
		}
		return 0.5
	default:
		panic(fmt.Sprintf("faultcast: unknown fault %d", int(fault)))
	}
}

// Feasible reports whether almost-safe broadcasting is feasible at failure
// probability p in the given scenario (strict inequality against
// Threshold, as in the paper).
func Feasible(model Model, fault Fault, p float64, maxDegree int) bool {
	if p < 0 || p >= 1 {
		return false
	}
	return p < Threshold(model, fault, maxDegree)
}
